// Quantifies the accuracy/speed trade-off of quantum-based temporal
// decoupling discussed in paper SII, and contrasts it with the Smart FIFO,
// which needs no quantum ("without requiring the user to set a time
// quantum") and keeps timing exact.
//
// Table A -- the paper's cancellation example: a worker simulates a long
// computation with fine-grained annotations; a second process cancels it at
// a fixed date T. Under a global quantum Q, "the first process may receive
// the cancellation message when its local date is already T+Q, thus
// introducing a timing error of Q". The sweep shows observed error growing
// with Q while context switches fall.
//
// Table B -- the Fig. 2/3 pipeline: the same FIFO workload run as TDless
// (reference dates), NaiveTD (decoupled processes over a date-unaware FIFO,
// quantum syncs only -- Fig. 3) and TDfull (Smart FIFO). NaiveTD trades
// date accuracy for speed as its quantum grows; the Smart FIFO is as fast
// with zero date error.
//
// Table C (--adaptive) -- the adaptive quantum controller closing the
// loop: a quantum-churn workload swept over fixed quanta, then re-run with
// an adaptive policy seeded from the *worst* fixed quantum. The adaptive
// run must converge to near-best wall-clock throughput while every
// deterministic timing field (a Smart-FIFO stream's completion date and
// checksum, which no quantum may move) stays bit-identical across all
// rows; tools/check_bench.py gates both.
//
// Usage: bench_quantum_tradeoff [--steps N] [--blocks N] [--words N]
//                                [--adaptive] [--churn-steps N] [--json]
//
// --churn-steps sizes Table C independently of Table A's --steps (default:
// equal), so a fast CI smoke invocation can still give the adaptive sweep
// enough work for its wall-clock gate to clear the noise floor.
//
// --json additionally writes BENCH_quantum_tradeoff.json with one row per
// sweep point, including the per-cause sync counts from KernelStats
// (quantum- vs. FIFO-driven) behind each context-switch total; adaptive
// rows carry the final quantum and the quantum_adjustments count from the
// controller's decision trace.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_json.h"
#include "core/smart_fifo.h"
#include "kernel/quantum_controller.h"
#include "workloads/pipeline.h"

namespace {

using tdsim::Kernel;
using tdsim::KernelStats;
using tdsim::QuantumPolicy;
using tdsim::SmartFifo;
using tdsim::SyncCause;
using tdsim::SyncDomain;
using tdsim::ThreadOptions;
using tdsim::Time;
using tdsim::TimeUnit;
using namespace tdsim::time_literals;

// -------------------------------------------------------------------------
// Table A: cancellation latency under a quantum sweep.
// -------------------------------------------------------------------------

struct CancelResult {
  Time observed;  ///< Worker's local date when it saw the cancellation.
  KernelStats stats;
  double wall_seconds = 0;
};

/// Worker annotates `step` per iteration and checks a flag each time;
/// canceller raises the flag at `cancel_at`. With quantum Q the worker only
/// syncs every Q, so it observes the flag up to Q late.
CancelResult run_cancellation(Time quantum, Time step, Time cancel_at,
                              std::uint64_t max_steps) {
  Kernel kernel;
  kernel.set_global_quantum(quantum);
  bool cancelled = false;
  CancelResult result;

  kernel.spawn_thread("worker", [&] {
    for (std::uint64_t i = 0; i < max_steps; ++i) {
      if (quantum.is_zero()) {
        tdsim::wait(step);  // no decoupling: one context switch per step
      } else {
        kernel.sync_domain().inc_and_sync_if_needed(step);
      }
      if (cancelled) {
        result.observed = kernel.sync_domain().local_time_stamp();
        return;
      }
    }
  });
  kernel.spawn_thread("canceller", [&] {
    tdsim::wait(cancel_at);
    cancelled = true;
  });

  const auto start = std::chrono::steady_clock::now();
  kernel.run();
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.stats = kernel.stats();
  return result;
}

// -------------------------------------------------------------------------
// Table B: pipeline end-date error under NaiveTD vs Smart FIFO.
// -------------------------------------------------------------------------

struct PipelineResult {
  Time end_date;
  KernelStats stats;
  double wall_seconds = 0;
  bool correct = false;
};

PipelineResult run_pipeline(tdsim::workloads::ModelKind kind, Time quantum,
                            std::uint64_t blocks,
                            std::uint64_t words_per_block) {
  tdsim::workloads::PipelineConfig config;
  config.kind = kind;
  config.fifo_depth = 8;
  config.blocks = blocks;
  config.words_per_block = words_per_block;
  config.quantum = quantum;

  Kernel kernel;
  tdsim::workloads::Pipeline pipeline(kernel, config);
  const auto start = std::chrono::steady_clock::now();
  const Time end = pipeline.run_to_completion();
  const auto stop = std::chrono::steady_clock::now();

  PipelineResult result;
  result.end_date = end;
  result.stats = kernel.stats();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.correct = pipeline.correct();
  return result;
}

double signed_error_ns(Time value, Time reference) {
  const double v = static_cast<double>(value.ps());
  const double r = static_cast<double>(reference.ps());
  return (v - r) / 1e3;
}

// -------------------------------------------------------------------------
// Table C: fixed-quantum sweep vs the adaptive controller.
// -------------------------------------------------------------------------

struct ChurnResult {
  Time stream_done;          ///< Smart-FIFO stream completion (local date).
  bool checksum_ok = false;
  Time final_quantum;        ///< compute-domain quantum after the run
  std::uint64_t quantum_adjustments = 0;
  KernelStats stats;
  double wall_seconds = 0;
};

/// Two "compute" workers annotate fine-grained steps under the swept (or
/// adaptive) quantum -- nothing observes them below quantum granularity,
/// so their syncs are pure churn and only cost wall time. A separate
/// "stream" domain runs a Smart-FIFO producer/consumer pair whose
/// completion date rides on cell stamps alone: it is the deterministic
/// timing field no quantum choice may move.
ChurnResult run_churn(Time initial_quantum, bool adaptive,
                      std::uint64_t steps, std::uint64_t stream_words) {
  Kernel kernel;
  SyncDomain* compute = nullptr;
  if (adaptive) {
    QuantumPolicy policy;
    // Clamp to the fixed sweep's own range, so the adaptive run cannot
    // "win" by leaving the swept space.
    policy.min_quantum = 10_ns;
    policy.max_quantum = 100_us;
    compute = &kernel.create_domain(
        {.name = "compute", .quantum = initial_quantum, .policy = policy});
  } else {
    compute = &kernel.create_domain(
        {.name = "compute", .quantum = initial_quantum});
  }
  SyncDomain& stream_domain = kernel.create_domain(tdsim::DomainOptions{.name = "stream"});
  SmartFifo<std::uint32_t> fifo(kernel, "churn_stream", 16);

  for (int w = 0; w < 2; ++w) {
    ThreadOptions opts;
    opts.domain = compute;
    kernel.spawn_thread("compute" + std::to_string(w), [&kernel, steps] {
      for (std::uint64_t i = 0; i < steps; ++i) {
        kernel.current_domain().inc_and_sync_if_needed(10_ns);
      }
    }, opts);
  }
  ThreadOptions stream_opts;
  stream_opts.domain = &stream_domain;
  kernel.spawn_thread("producer", [&kernel, &fifo, stream_words] {
    for (std::uint64_t i = 0; i < stream_words; ++i) {
      kernel.current_domain().inc(3_ns);
      fifo.write(static_cast<std::uint32_t>(i));
    }
  }, stream_opts);
  ChurnResult result;
  std::uint32_t checksum = 0;
  kernel.spawn_thread("consumer",
                      [&kernel, &fifo, &result, &checksum, stream_words] {
    for (std::uint64_t i = 0; i < stream_words; ++i) {
      checksum = checksum * 31 + fifo.read();
      kernel.current_domain().inc(4_ns);
    }
    result.stream_done = kernel.current_domain().local_time_stamp();
  }, stream_opts);

  const auto start = std::chrono::steady_clock::now();
  kernel.run();
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();

  std::uint32_t expected = 0;
  for (std::uint64_t i = 0; i < stream_words; ++i) {
    expected = expected * 31 + static_cast<std::uint32_t>(i);
  }
  result.checksum_ok = checksum == expected;
  result.final_quantum = compute->quantum();
  result.stats = kernel.stats();
  result.quantum_adjustments = result.stats.quantum_adjustments;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t steps = 2'000'000;
  std::uint64_t blocks = 200;
  std::uint64_t words_per_block = 1000;
  std::uint64_t churn_steps = 0;  // 0: follow --steps
  bool emit_json = false;
  bool run_adaptive = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--blocks") == 0 && i + 1 < argc) {
      blocks = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--words") == 0 && i + 1 < argc) {
      words_per_block = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--churn-steps") == 0 && i + 1 < argc) {
      churn_steps = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      run_adaptive = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--steps N] [--blocks N] [--words N] "
                   "[--adaptive] [--churn-steps N] [--json]\n",
                   argv[0]);
      return 2;
    }
  }
  if (churn_steps == 0) {
    churn_steps = steps;
  }
  benchjson::Report report("quantum_tradeoff");

  const Time step = 10_ns;
  // One nanosecond past the mid-run date: were the cancellation aligned
  // with the quantum boundaries, every sweep point would observe it at the
  // same date and the error would be invisible. Just-after-a-boundary is
  // the paper's worst case ("a timing error of Q").
  const Time cancel_at = Time(steps / 2 * 10 + 1, TimeUnit::NS);

  std::printf("Table A: cancellation observation error vs global quantum\n");
  std::printf("worker step 10 ns x %llu, cancellation at %s\n\n",
              static_cast<unsigned long long>(steps),
              cancel_at.to_string().c_str());
  std::printf("%10s | %14s | %12s | %12s | %10s\n", "quantum", "error[ns]",
              "switches", "q-syncs", "wall[s]");

  const std::vector<Time> quanta = {Time{},  10_ns,  100_ns,
                                    1_us,    10_us,  100_us};
  for (Time q : quanta) {
    const CancelResult r = run_cancellation(q, step, cancel_at, steps);
    std::printf("%10s | %14.0f | %12llu | %12llu | %10.3f\n",
                q.is_zero() ? "none" : q.to_string().c_str(),
                signed_error_ns(r.observed, cancel_at),
                static_cast<unsigned long long>(r.stats.context_switches),
                static_cast<unsigned long long>(
                    r.stats.syncs(SyncCause::Quantum)),
                r.wall_seconds);
    if (emit_json) {
      report.row()
          .add("table", std::string("cancellation"))
          .add("quantum_ps", q.ps())
          .add("error_ns", signed_error_ns(r.observed, cancel_at))
          .add("context_switches", r.stats.context_switches)
          .add("syncs_quantum", r.stats.syncs(SyncCause::Quantum))
          .add("wall_seconds", r.wall_seconds);
    }
  }

  std::printf("\nTable B: pipeline end-date error (reference: TDless)\n");
  std::printf("workload: %llu blocks x %llu words, depth 8\n\n",
              static_cast<unsigned long long>(blocks),
              static_cast<unsigned long long>(words_per_block));
  std::printf("%22s | %14s | %12s | %12s | %10s\n", "model", "error[ns]",
              "switches", "q/fifo syncs", "wall[s]");

  const auto fifo_syncs = [](const PipelineResult& r) {
    return r.stats.syncs(SyncCause::FifoFull) +
           r.stats.syncs(SyncCause::FifoEmpty);
  };
  const auto add_pipeline_row = [&](const char* model, Time q,
                                    const PipelineResult& r,
                                    const PipelineResult& ref) {
    report.row()
        .add("table", std::string("pipeline"))
        .add("model", std::string(model))
        .add("quantum_ps", q.ps())
        .add("error_ns", signed_error_ns(r.end_date, ref.end_date))
        .add("context_switches", r.stats.context_switches)
        .add("syncs_quantum", r.stats.syncs(SyncCause::Quantum))
        .add("syncs_fifo", fifo_syncs(r))
        .add("wall_seconds", r.wall_seconds);
  };

  using tdsim::workloads::ModelKind;
  const PipelineResult reference =
      run_pipeline(ModelKind::TDless, Time{}, blocks, words_per_block);
  std::printf("%22s | %14.0f | %12llu | %5llu/%6llu | %10.3f\n",
              "TDless (reference)", 0.0,
              static_cast<unsigned long long>(reference.stats.context_switches),
              static_cast<unsigned long long>(
                  reference.stats.syncs(SyncCause::Quantum)),
              static_cast<unsigned long long>(fifo_syncs(reference)),
              reference.wall_seconds);
  if (emit_json) {
    add_pipeline_row("TDless", Time{}, reference, reference);
  }

  bool ok = reference.correct;
  for (Time q : {10_ns, 1_us, 100_us}) {
    const PipelineResult r =
        run_pipeline(ModelKind::NaiveTD, q, blocks, words_per_block);
    ok = ok && r.correct;
    std::printf("%15s Q=%-5s | %14.0f | %12llu | %5llu/%6llu | %10.3f\n",
                "naiveTD", q.to_string().c_str(),
                signed_error_ns(r.end_date, reference.end_date),
                static_cast<unsigned long long>(r.stats.context_switches),
                static_cast<unsigned long long>(
                    r.stats.syncs(SyncCause::Quantum)),
                static_cast<unsigned long long>(fifo_syncs(r)),
                r.wall_seconds);
    if (emit_json) {
      add_pipeline_row("naiveTD", q, r, reference);
    }
  }
  const PipelineResult smart =
      run_pipeline(ModelKind::TDfull, Time{}, blocks, words_per_block);
  ok = ok && smart.correct && smart.end_date == reference.end_date;
  std::printf("%22s | %14.0f | %12llu | %5llu/%6llu | %10.3f\n",
              "TDfull (Smart FIFO)",
              signed_error_ns(smart.end_date, reference.end_date),
              static_cast<unsigned long long>(smart.stats.context_switches),
              static_cast<unsigned long long>(
                  smart.stats.syncs(SyncCause::Quantum)),
              static_cast<unsigned long long>(fifo_syncs(smart)),
              smart.wall_seconds);
  if (emit_json) {
    add_pipeline_row("TDfull", Time{}, smart, reference);
  }

  if (run_adaptive) {
    // Table C: the same fixed-quantum tension, then the controller closing
    // the loop from the worst seed. stream length scales with --steps so
    // the CI smoke invocation stays fast.
    const std::uint64_t stream_words = churn_steps / 100 + 16;
    std::printf("\nTable C: fixed-quantum churn sweep vs adaptive "
                "controller\n");
    std::printf("2 compute workers x %llu steps of 10 ns; Smart-FIFO "
                "stream of %llu words (dates quantum-invariant)\n\n",
                static_cast<unsigned long long>(churn_steps),
                static_cast<unsigned long long>(stream_words));
    std::printf("%18s | %12s | %14s | %11s | %16s | %10s\n", "quantum",
                "q-syncs", "final quantum", "adjustments", "stream done[ps]",
                "wall[s]");

    const auto churn_row = [&](const char* label, Time initial, bool adaptive,
                               const ChurnResult& r) {
      std::printf("%18s | %12llu | %14s | %11llu | %16llu | %10.3f%s\n",
                  label,
                  static_cast<unsigned long long>(
                      r.stats.syncs(SyncCause::Quantum)),
                  r.final_quantum.to_string().c_str(),
                  static_cast<unsigned long long>(r.quantum_adjustments),
                  static_cast<unsigned long long>(r.stream_done.ps()),
                  r.wall_seconds, r.checksum_ok ? "" : "  CHECKSUM MISMATCH");
      if (emit_json) {
        report.row()
            .add("table", std::string("adaptive_churn"))
            .add("adaptive", static_cast<std::uint64_t>(adaptive ? 1 : 0))
            .add("quantum_ps", initial.ps())
            .add("final_quantum_ps", r.final_quantum.ps())
            .add("quantum_adjustments", r.quantum_adjustments)
            .add("syncs_quantum", r.stats.syncs(SyncCause::Quantum))
            .add("syncs_fifo", r.stats.syncs(SyncCause::FifoFull) +
                                  r.stats.syncs(SyncCause::FifoEmpty))
            .add("context_switches", r.stats.context_switches)
            .add("stream_done_ps", r.stream_done.ps())
            .add("wall_seconds", r.wall_seconds);
      }
    };

    const std::vector<Time> churn_sweep = {10_ns, 100_ns, 1_us, 10_us,
                                           100_us};
    Time stream_reference;
    double best_fixed_wall = 0;
    bool have_best = false;
    for (Time q : churn_sweep) {
      const ChurnResult r = run_churn(q, /*adaptive=*/false, churn_steps,
                                      stream_words);
      ok = ok && r.checksum_ok;
      if (stream_reference.is_zero()) {
        stream_reference = r.stream_done;
      }
      ok = ok && r.stream_done == stream_reference;
      if (!have_best || r.wall_seconds < best_fixed_wall) {
        best_fixed_wall = r.wall_seconds;
        have_best = true;
      }
      churn_row(q.to_string().c_str(), q, false, r);
    }
    // The adaptive run starts from the sweep's worst point (the smallest
    // quantum: maximal churn) and must climb out on its own.
    const Time worst = churn_sweep.front();
    const ChurnResult adaptive =
        run_churn(worst, /*adaptive=*/true, churn_steps, stream_words);
    ok = ok && adaptive.checksum_ok &&
         adaptive.stream_done == stream_reference &&
         adaptive.final_quantum > worst;
    churn_row("adaptive", worst, true, adaptive);
    std::printf("\nadaptive from %s: final quantum %s after %llu "
                "adjustments; wall %.3fs vs best fixed %.3fs (%.0f%% "
                "throughput)\n",
                worst.to_string().c_str(),
                adaptive.final_quantum.to_string().c_str(),
                static_cast<unsigned long long>(adaptive.quantum_adjustments),
                adaptive.wall_seconds, best_fixed_wall,
                adaptive.wall_seconds > 0
                    ? 100.0 * best_fixed_wall / adaptive.wall_seconds
                    : 100.0);
  }

  if (emit_json && !report.write()) {
    return 1;
  }

  if (!ok) {
    std::fprintf(stderr,
                 "ERROR: checksum failure, Smart FIFO date mismatch, or "
                 "adaptive run moved a deterministic field\n");
    return 1;
  }
  return 0;
}
