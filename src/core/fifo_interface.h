// Common interface over the three FIFO channel flavours used throughout the
// reproduction (paper SIV.B compares models built on each):
//   * Fifo        -- regular channel, untimed models (via UntimedFifo),
//   * SyncFifo    -- regular channel + sync() per access ("TDless"),
//   * SmartFifo   -- the paper's contribution ("TDfull").
// Scenarios written against this interface can run unchanged in every mode,
// which is what the dual-mode validation of paper SIV.A requires.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernel/event.h"

namespace tdsim {

template <typename T>
class FifoInterface {
 public:
  virtual ~FifoInterface() = default;

  // Writer-side interface (paper Fig. 4): high-rate, dates must be ordered.
  virtual void write(T value) = 0;
  virtual bool is_full() = 0;
  virtual Event& not_full_event() = 0;

  // Reader-side interface: high-rate, dates must be ordered.
  virtual T read() = 0;
  virtual bool is_empty() = 0;
  virtual Event& not_empty_event() = 0;

  // Monitor interface: low-rate.
  virtual std::size_t get_size() = 0;

  virtual std::size_t depth() const = 0;

  /// Chunked-transfer opt-in (see core/chunk_protocol.h): a capacity >= 2
  /// batches the channel's per-element bookkeeping (delta notifications,
  /// per-access syncs, external-view transitions) once per chunk; 0 or 1
  /// restores per-element mode. Channels without a chunked mode ignore
  /// it. Data-path dates are bit-exact across modes; only counts change.
  virtual void set_chunk_capacity(std::size_t) {}
  virtual std::size_t chunk_capacity() const { return 0; }

  /// Lifetime counters for benchmarks and tests.
  virtual std::uint64_t total_writes() const = 0;
  virtual std::uint64_t total_reads() const = 0;
};

}  // namespace tdsim
