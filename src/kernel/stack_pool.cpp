#include "kernel/stack_pool.h"

#include <sys/mman.h>
#include <unistd.h>

#include <string>

#include "kernel/fiber_sanitizer.h"
#include "kernel/report.h"

namespace tdsim {

namespace {

std::size_t page_size() {
  static const std::size_t size =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

}  // namespace

StackPool& StackPool::instance() {
  // Meyers singleton, same lifetime discipline as Scheduler::instance():
  // constructed on first use, destroyed at process exit (any block still
  // live in a static kernel then is reclaimed by the OS).
  static StackPool pool;
  return pool;
}

StackPool::~StackPool() {
  for (auto& list : free_) {
    for (const StackBlock& block : list) {
      ::munmap(block.map_base, block.map_size);
    }
  }
}

std::size_t StackPool::class_index(std::size_t min_size) {
  std::size_t size = kMinStackClass;
  std::size_t index = 0;
  while (size < min_size) {
    size <<= 1;
    ++index;
  }
  return index;
}

StackPool::Acquired StackPool::acquire(std::size_t min_size, bool guard) {
  const std::size_t index = class_index(min_size);
  const std::size_t usable = kMinStackClass << index;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (index < free_.size() && !free_[index].empty()) {
      StackBlock block = free_[index].back();
      free_[index].pop_back();
      recycled_count_++;
      if (guard && !block.guarded) {
        // Upgrade in place: the guard page was reserved (RW) when the
        // block was created unguarded, one mprotect arms it.
        if (::mprotect(block.map_base, page_size(), PROT_NONE) == 0) {
          block.guarded = true;
        }
      }
      return {block, true};
    }
  }
  // Fresh mapping: guard page + usable region. Pages are zero-on-demand
  // -- unlike make_unique<char[]>, nothing is written until the fiber
  // actually grows into a page.
  const std::size_t page = page_size();
  const std::size_t total = usable + page;
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    Report::error("StackPool: mmap of " + std::to_string(total) +
                  " bytes failed (out of memory or vm.max_map_count?)");
  }
  StackBlock block;
  block.map_base = base;
  block.map_size = total;
  block.sp = static_cast<char*>(base) + page;
  block.size = usable;
  if (guard) {
    block.guarded = ::mprotect(base, page, PROT_NONE) == 0;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    mapped_bytes_ += total;
  }
  return {block, false};
}

void StackPool::release(const StackBlock& block) {
  if (!block) {
    return;
  }
  // The dead fiber's frames may have left poisoned ASan shadow behind
  // (the null-save final switch frees the fake stack, not the real
  // stack's shadow); scrub it so the next fiber starts clean.
  fiber::unpoison_stack(block.sp, block.size);
  const std::size_t index = class_index(block.size);
  std::lock_guard<std::mutex> lock(mutex_);
  if (free_.size() <= index) {
    free_.resize(index + 1);
  }
  free_[index].push_back(block);
}

void StackPool::retire(const StackBlock& block) {
  if (!block) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  retired_blocks_++;
}

std::size_t StackPool::free_blocks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& list : free_) {
    count += list.size();
  }
  return count;
}

std::uint64_t StackPool::mapped_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mapped_bytes_;
}

std::uint64_t StackPool::recycled_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recycled_count_;
}

}  // namespace tdsim
