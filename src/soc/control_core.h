// Embedded-software model: one core programming the accelerators through
// the memory-mapped bus, then polling their status and FIFO levels. All
// its transactions are temporally decoupled with the global quantum, "using
// existing methods" (paper SIV.C).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/module.h"
#include "tlm/socket.h"
#include "trace/trace.h"

namespace tdsim::soc {

class ControlCore : public Module {
 public:
  struct Config {
    /// Bus base address of each accelerator's register bank.
    std::vector<std::uint64_t> accelerator_bases;
    /// Pause between status polling rounds.
    Time poll_period = 1_us;
    /// Read the input-FIFO-level monitor register every Nth polling round
    /// (0 disables monitoring).
    unsigned monitor_every = 4;
    /// Sub-grid phase added once before the polling loop. Stream activity
    /// happens on an integer-nanosecond date grid; offsetting the polls off
    /// that grid keeps every monitor observation away from same-date races,
    /// which would make the reference mode scheduler-dependent (programs
    /// the paper excludes from its validation suite, SIV.A).
    Time poll_phase = Time(500, TimeUnit::PS);
    /// Synchronization domain the software process joins (e.g. a dedicated
    /// "cpu" domain with a tight quantum); null = the module default.
    SyncDomain* domain = nullptr;
  };

  ControlCore(Module& parent, const std::string& name, Config config);

  tlm::InitiatorSocket& socket() { return socket_; }
  void set_recorder(trace::Recorder* recorder) { recorder_ = recorder; }

  /// Local date at which the software observed all accelerators done.
  Time all_done_date() const { return all_done_date_; }
  std::uint64_t polls() const { return polls_; }

 private:
  void software();

  Config config_;
  tlm::InitiatorSocket socket_;
  trace::Recorder* recorder_ = nullptr;
  Time all_done_date_;
  std::uint64_t polls_ = 0;
};

}  // namespace tdsim::soc
