// Scheduler semantics: thread processes, method processes, wait, time
// advance, initialization, stop, teardown unwinding.
#include "kernel/kernel.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/report.h"

namespace tdsim {
namespace {

TEST(Kernel, EmptyKernelRunsToCompletion) {
  Kernel k;
  k.run();
  EXPECT_EQ(k.now(), Time{});
  EXPECT_EQ(k.stats().context_switches, 0u);
}

TEST(Kernel, ThreadRunsAtInitialization) {
  Kernel k;
  bool ran = false;
  k.spawn_thread("t", [&] { ran = true; });
  k.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(k.stats().context_switches, 1u);
}

TEST(Kernel, WaitAdvancesTime) {
  Kernel k;
  std::vector<Time> stamps;
  k.spawn_thread("t", [&] {
    stamps.push_back(k.now());
    k.wait(10_ns);
    stamps.push_back(k.now());
    k.wait(5_ns);
    stamps.push_back(k.now());
  });
  k.run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], Time{});
  EXPECT_EQ(stamps[1], 10_ns);
  EXPECT_EQ(stamps[2], 15_ns);
  EXPECT_EQ(k.now(), 15_ns);
}

TEST(Kernel, TwoThreadsInterleaveByTime) {
  Kernel k;
  std::vector<std::string> order;
  k.spawn_thread("a", [&] {
    order.push_back("a0");
    k.wait(10_ns);
    order.push_back("a10");
    k.wait(20_ns);
    order.push_back("a30");
  });
  k.spawn_thread("b", [&] {
    order.push_back("b0");
    k.wait(15_ns);
    order.push_back("b15");
  });
  k.run();
  EXPECT_EQ(order, (std::vector<std::string>{"a0", "b0", "a10", "b15", "a30"}));
}

TEST(Kernel, RunUntilStopsAtBound) {
  Kernel k;
  int wakes = 0;
  k.spawn_thread("t", [&] {
    for (;;) {
      k.wait(10_ns);
      wakes++;
    }
  });
  k.run(35_ns);
  EXPECT_EQ(wakes, 3);
  EXPECT_EQ(k.now(), 35_ns);
  // Can continue.
  k.run(100_ns);
  EXPECT_EQ(wakes, 10);
}

TEST(Kernel, DontInitializeThreadNeverRunsWithoutTrigger) {
  Kernel k;
  bool ran = false;
  ThreadOptions opts;
  opts.dont_initialize = true;
  k.spawn_thread("t", [&] { ran = true; }, opts);
  k.run();
  EXPECT_FALSE(ran);
}

TEST(Kernel, StopEndsRunEarly) {
  Kernel k;
  int wakes = 0;
  k.spawn_thread("t", [&] {
    for (;;) {
      k.wait(10_ns);
      if (++wakes == 3) {
        k.stop();
      }
    }
  });
  k.run();
  EXPECT_EQ(wakes, 3);
  EXPECT_EQ(k.now(), 30_ns);
}

TEST(Kernel, MethodRunsOnceAtInitialization) {
  Kernel k;
  int runs = 0;
  k.spawn_method("m", [&] { runs++; });
  k.run();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(k.stats().method_activations, 1u);
  EXPECT_EQ(k.stats().context_switches, 0u);
}

TEST(Kernel, MethodNextTriggerTimerReactivates) {
  Kernel k;
  std::vector<Time> stamps;
  k.spawn_method("m", [&] {
    stamps.push_back(k.now());
    if (stamps.size() < 4) {
      k.next_trigger(10_ns);
    }
  });
  k.run();
  EXPECT_EQ(stamps, (std::vector<Time>{Time{}, 10_ns, 20_ns, 30_ns}));
}

TEST(Kernel, MethodStaticSensitivity) {
  Kernel k;
  Event e(k, "e");
  int runs = 0;
  MethodOptions opts;
  opts.sensitivity = {&e};
  opts.dont_initialize = true;
  k.spawn_method("m", [&] { runs++; }, opts);
  k.spawn_thread("t", [&] {
    k.wait(5_ns);
    e.notify();
    k.wait(5_ns);
    e.notify();
  });
  k.run();
  EXPECT_EQ(runs, 2);
}

TEST(Kernel, NextTriggerEventOverridesStaticSensitivity) {
  Kernel k;
  Event static_ev(k, "static");
  Event dynamic_ev(k, "dynamic");
  std::vector<std::string> wakes;
  MethodOptions opts;
  opts.sensitivity = {&static_ev};
  opts.dont_initialize = true;
  bool first = true;
  k.spawn_method(
      "m",
      [&] {
        wakes.push_back(k.now().to_string());
        if (first) {
          first = false;
          k.next_trigger(dynamic_ev);
        }
      },
      opts);
  k.spawn_thread("t", [&] {
    k.wait(1_ns);
    static_ev.notify();  // first activation
    k.wait(1_ns);
    static_ev.notify();  // must be ignored: dynamic override armed
    k.wait(1_ns);
    dynamic_ev.notify();  // second activation
    k.wait(1_ns);
    static_ev.notify();  // static sensitivity restored: third activation
  });
  k.run();
  EXPECT_EQ(wakes, (std::vector<std::string>{"1 ns", "3 ns", "4 ns"}));
}

TEST(Kernel, WaitFromMethodIsAnError) {
  Kernel k;
  k.spawn_method("m", [&] { k.wait(1_ns); });
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(Kernel, NextTriggerFromThreadIsAnError) {
  Kernel k;
  k.spawn_thread("t", [&] { k.next_trigger(1_ns); });
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(Kernel, ExceptionInThreadPropagatesOutOfRun) {
  Kernel k;
  k.spawn_thread("t", [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(k.run(), std::runtime_error);
}

TEST(Kernel, ExceptionInMethodPropagatesOutOfRun) {
  Kernel k;
  k.spawn_method("m", [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(k.run(), std::runtime_error);
}

TEST(Kernel, DynamicallySpawnedThreadRuns) {
  Kernel k;
  bool child_ran = false;
  k.spawn_thread("parent", [&] {
    k.wait(10_ns);
    k.spawn_thread("child", [&] {
      EXPECT_EQ(k.now(), 10_ns);
      child_ran = true;
    });
    k.wait(1_ns);
  });
  k.run();
  EXPECT_TRUE(child_ran);
}

TEST(Kernel, TeardownUnwindsBlockedThreadStacks) {
  // A thread suspended in wait() holds an RAII object; destroying the
  // kernel must run its destructor (via ProcessKilled unwinding).
  bool destroyed = false;
  struct Guard {
    bool* flag;
    ~Guard() { *flag = true; }
  };
  {
    Kernel k;
    k.spawn_thread("t", [&] {
      Guard g{&destroyed};
      k.wait(1000_s);
    });
    k.run(1_ns);
    EXPECT_FALSE(destroyed);
  }
  EXPECT_TRUE(destroyed);
}

TEST(Kernel, CurrentProcessTracksExecution) {
  Kernel k;
  Process* t = k.spawn_thread("t", [&] {
    EXPECT_EQ(k.current_process()->name(), "t");
    k.wait(1_ns);
    EXPECT_EQ(k.current_process()->name(), "t");
  });
  EXPECT_EQ(k.current_process(), nullptr);
  k.run();
  EXPECT_EQ(k.current_process(), nullptr);
  EXPECT_TRUE(t->terminated());
}

TEST(Kernel, FreeFunctionsRequireRunningKernel) {
  EXPECT_THROW(wait(1_ns), SimulationError);
  EXPECT_THROW(sim_time_stamp(), SimulationError);
}

TEST(Kernel, FreeFunctionsWorkInsideProcesses) {
  Kernel k;
  k.spawn_thread("t", [&] {
    wait(10_ns);
    EXPECT_EQ(sim_time_stamp(), 10_ns);
  });
  k.run();
  EXPECT_EQ(k.now(), 10_ns);
}

TEST(Kernel, StatsCountProcesses) {
  Kernel k;
  k.spawn_thread("a", [] {});
  k.spawn_thread("b", [] {});
  k.spawn_method("m", [] {});
  k.run();
  EXPECT_EQ(k.stats().processes_spawned, 3u);
  EXPECT_EQ(k.stats().context_switches, 2u);
  EXPECT_EQ(k.stats().method_activations, 1u);
}

TEST(Kernel, WaitDeltaYieldsWithinSameDate) {
  Kernel k;
  std::vector<std::string> order;
  k.spawn_thread("a", [&] {
    order.push_back("a1");
    k.wait_delta();
    order.push_back("a2");
    EXPECT_EQ(k.now(), Time{});
  });
  k.spawn_thread("b", [&] { order.push_back("b1"); });
  k.run();
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "b1", "a2"}));
}

TEST(Kernel, SimultaneousTimeoutsFireInScheduleOrder) {
  Kernel k;
  std::vector<std::string> order;
  k.spawn_thread("a", [&] {
    k.wait(10_ns);
    order.push_back("a");
  });
  k.spawn_thread("b", [&] {
    k.wait(10_ns);
    order.push_back("b");
  });
  k.run();
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b"}));
}

TEST(Kernel, NestedRunIsAnError) {
  Kernel k;
  k.spawn_thread("t", [&] { k.run(); });
  EXPECT_THROW(k.run(), SimulationError);
}

}  // namespace
}  // namespace tdsim
