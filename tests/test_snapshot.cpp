// Kernel::build / snapshot / fork (kernel/snapshot.h): restart-from-log
// checkpointing. A kernel whose elaboration is routed through build()
// steps can be snapshotted after an arbitrary warm-up and forked into
// divergent variants, each bit-identical to a cold kernel constructed the
// same way -- the fleet primitive behind bench_fleet.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/smart_fifo.h"
#include "kernel/kernel.h"
#include "kernel/report.h"
#include "kernel/snapshot.h"
#include "kernel/sync_domain.h"

namespace tdsim {
namespace {

/// Per-kernel model state for replayable builds: every build step resolves
/// its kernel's own slot here, so a replay into a forked kernel constructs
/// fresh state instead of touching the original's (std::map nodes are
/// address-stable, which the spawned lambdas rely on). State is kept per
/// pipeline tag -- each tag is its own concurrency group, and groups may
/// execute on different workers mid-run. Channels reference their kernel
/// in their destructors, so a kernel's slot must be dropped (drop())
/// before that kernel dies.
struct TagState {
  std::unique_ptr<SmartFifo<int>> fifo;
  std::vector<Time> dates;
  std::uint32_t checksum = 0;
};

struct Model {
  std::map<std::string, TagState> tags;

  std::vector<Time> dates() const {
    std::vector<Time> all;
    for (const auto& [tag, state] : tags) {
      all.insert(all.end(), state.dates.begin(), state.dates.end());
    }
    return all;
  }

  std::vector<std::uint32_t> checksums() const {
    std::vector<std::uint32_t> all;
    for (const auto& [tag, state] : tags) {
      all.push_back(state.checksum);
    }
    return all;
  }
};

struct ModelRegistry {
  std::map<const Kernel*, Model> slots;
  Model& of(const Kernel& k) { return slots[&k]; }
  void drop(const Kernel& k) { slots.erase(&k); }
};

/// One replayable build step: a producer/consumer pair over a Smart FIFO
/// in two concurrent domains. `tag` keeps names unique so the step can be
/// applied repeatedly (e.g. as a diverge step) to one kernel.
void build_pipeline(Kernel& k, ModelRegistry& models, const std::string& tag,
                    int words) {
  k.build([&models, tag, words](Kernel& kk) {
    TagState& state = models.of(kk).tags[tag];
    SyncDomain& prod = kk.create_domain(
        {.name = tag + "_prod", .quantum = 40_ns, .concurrent = true});
    SyncDomain& cons = kk.create_domain(
        {.name = tag + "_cons", .quantum = 300_ns, .concurrent = true});
    state.fifo = std::make_unique<SmartFifo<int>>(kk, tag + "_fifo", 3);
    SmartFifo<int>* fifo = state.fifo.get();
    ThreadOptions popts;
    popts.domain = &prod;
    kk.spawn_thread(tag + "_producer", [&kk, fifo, words] {
      for (int i = 0; i < words; ++i) {
        kk.current_domain().inc((i % 5 + 1) * 3_ns);
        fifo->write(i);
      }
    }, popts);
    ThreadOptions copts;
    copts.domain = &cons;
    kk.spawn_thread(tag + "_consumer", [&kk, fifo, &state, words] {
      for (int i = 0; i < words; ++i) {
        state.checksum = state.checksum * 31 +
                         static_cast<std::uint32_t>(fifo->read());
        kk.current_domain().inc((i % 3 + 1) * 4_ns);
        state.dates.push_back(kk.current_domain().local_time_stamp());
      }
    }, copts);
  });
}

struct Result {
  Time end;
  std::uint64_t delta_cycles = 0;
  std::uint64_t context_switches = 0;
  /// Dates concatenated per tag (tag-sorted), checksums alongside.
  std::vector<Time> dates;
  std::vector<std::uint32_t> checksums;

  void capture(const Kernel& k, const Model& model) {
    end = k.now();
    delta_cycles = k.stats().delta_cycles;
    context_switches = k.stats().context_switches;
    dates = model.dates();
    checksums = model.checksums();
  }

  bool operator==(const Result& o) const {
    return end == o.end && delta_cycles == o.delta_cycles &&
           context_switches == o.context_switches && dates == o.dates &&
           checksums == o.checksums;
  }
};

TEST(Snapshot, ForkReplaysToTheWarmPointAndFinishesBitExact) {
  ModelRegistry models;
  // Cold reference: the same construction run start to finish in one go.
  Result cold;
  {
    Kernel k;
    build_pipeline(k, models, "pipe", 40);
    k.run();
    cold.capture(k, models.of(k));
    models.drop(k);
  }

  {
    Kernel warm;
    build_pipeline(warm, models, "pipe", 40);
    warm.run(100_ns);  // warm-up slice; auto-logged
    const Snapshot snap = warm.snapshot();
    EXPECT_EQ(snap.warmed_to, 100_ns);

    // Two forks replay independently; each must land exactly at the warm
    // point and then finish bit-identical to the cold run.
    for (int i = 0; i < 2; ++i) {
      std::unique_ptr<Kernel> fork = Kernel::fork(snap);
      EXPECT_EQ(fork->now(), 100_ns);
      fork->run();
      Result forked;
      forked.capture(*fork, models.of(*fork));
      EXPECT_TRUE(forked == cold) << "fork " << i;
      models.drop(*fork);
    }
    // The original continues unperturbed by having been snapshotted.
    warm.run();
    Result continued;
    continued.capture(warm, models.of(warm));
    EXPECT_TRUE(continued == cold);
    models.drop(warm);
  }
}

TEST(Snapshot, ForkedKernelsAreThemselvesForkable) {
  ModelRegistry models;
  Kernel root;
  build_pipeline(root, models, "chain", 30);
  root.run(80_ns);
  const Snapshot snap = root.snapshot();

  std::unique_ptr<Kernel> child = Kernel::fork(snap);
  child->run(200_ns);  // advance further, auto-logged in the child
  const Snapshot child_snap = child->snapshot();
  EXPECT_EQ(child_snap.warmed_to, 200_ns);

  std::unique_ptr<Kernel> grandchild = Kernel::fork(child_snap);
  EXPECT_EQ(grandchild->now(), 200_ns);
  grandchild->run();
  child->run();
  Result from_child;
  from_child.capture(*child, models.of(*child));
  Result from_grandchild;
  from_grandchild.capture(*grandchild, models.of(*grandchild));
  EXPECT_TRUE(from_child == from_grandchild);
  models.drop(*grandchild);
  models.drop(*child);
  models.drop(root);
}

TEST(Snapshot, DivergeStepMakesVariants) {
  ModelRegistry models;
  Kernel base;
  build_pipeline(base, models, "a", 20);
  base.run(50_ns);
  const Snapshot snap = base.snapshot();

  // Variant: one extra pipeline grafted at the fork point. Must match a
  // cold kernel built with both pipelines from scratch (the second one
  // added at the same 50 ns point).
  ForkOptions options;
  options.diverge = [&models](Kernel& kk) {
    build_pipeline(kk, models, "b", 10);
  };
  std::unique_ptr<Kernel> variant = Kernel::fork(snap, std::move(options));
  variant->run();

  {
    Kernel cold;
    build_pipeline(cold, models, "a", 20);
    cold.run(50_ns);
    build_pipeline(cold, models, "b", 10);
    cold.run();
    EXPECT_EQ(variant->now(), cold.now());
    EXPECT_EQ(variant->stats().delta_cycles, cold.stats().delta_cycles);
    EXPECT_EQ(models.of(*variant).dates(), models.of(cold).dates());
    EXPECT_EQ(models.of(*variant).checksums(), models.of(cold).checksums());
    models.drop(cold);
  }

  // The un-diverged base still runs only its own pipeline: the diverge
  // step landed in the fork alone.
  base.run();
  EXPECT_EQ(models.of(base).dates().size(), 20u);
  EXPECT_EQ(models.of(*variant).dates().size(), 30u);
  models.drop(*variant);
  models.drop(base);
}

TEST(Snapshot, ExecutionConfigOverridesKeepDatesIdentical) {
  // workers / chunking are execution-only knobs: forking the same
  // snapshot under different values must not move a date.
  ModelRegistry models;
  Kernel base;
  build_pipeline(base, models, "cfg", 40);
  base.run(100_ns);
  const Snapshot snap = base.snapshot();

  std::unique_ptr<Kernel> seq = Kernel::fork(snap);
  std::unique_ptr<Kernel> par =
      Kernel::fork(snap, {.config = KernelConfig{.workers = 4}});
  EXPECT_EQ(par->workers(), 4u);
  EXPECT_EQ(seq->workers(), base.workers());
  seq->run();
  par->run();
  EXPECT_EQ(seq->now(), par->now());
  EXPECT_EQ(seq->stats().delta_cycles, par->stats().delta_cycles);
  EXPECT_EQ(models.of(*seq).dates(), models.of(*par).dates());
  EXPECT_EQ(models.of(*seq).checksums(), models.of(*par).checksums());
  models.drop(*par);
  models.drop(*seq);
  models.drop(base);
}

TEST(Snapshot, ElaborationOutsideBuildDisqualifiesSnapshot) {
  Kernel k;
  k.spawn_thread("loose", [&k] { k.wait(1_ns); });  // not inside build()
  EXPECT_THROW(k.snapshot(), SimulationError);
}

TEST(Snapshot, SnapshotInsideARunningProcessIsAnError) {
  Kernel k;
  k.build([](Kernel& kk) {
    kk.spawn_thread("snapper", [&kk] {
      kk.wait(5_ns);
      kk.snapshot();  // from simulation context: must throw
    });
  });
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(Snapshot, NondeterministicBuildStepIsCaughtByTheFingerprint) {
  // A build step that depends on how often it ran replays differently;
  // the fork's fingerprint check must catch it instead of silently
  // handing back a divergent kernel.
  Kernel k;
  int calls = 0;
  k.build([&calls](Kernel& kk) {
    if (calls++ == 0) {
      kk.spawn_thread("only_first_time", [&kk] { kk.wait(3_ns); });
    }
  });
  k.run(10_ns);
  const Snapshot snap = k.snapshot();
  EXPECT_THROW(Kernel::fork(snap), SimulationError);
}

TEST(Snapshot, EmptyKernelSnapshotsTrivially) {
  Kernel k;
  const Snapshot snap = k.snapshot();  // nothing built, nothing run
  EXPECT_EQ(snap.warmed_to, Time{});
  EXPECT_TRUE(snap.log.empty());
  std::unique_ptr<Kernel> fork = Kernel::fork(snap);
  EXPECT_EQ(fork->now(), Time{});
}

}  // namespace
}  // namespace tdsim
