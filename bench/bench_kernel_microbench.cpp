// Kernel primitive costs (ablation for the paper's SI premise: "context
// switches are costly in terms of simulation speed... the context switches
// would become the bottleneck of the simulation").
//
// Measures, per operation:
//   * thread context switch (wait of a timed duration -- the cost a
//     per-access synchronization pays);
//   * thread event ping-pong (two switches plus event dispatch);
//   * method activation (run-to-completion, no stack switch -- why the
//     paper models routers and network interfaces with SC_METHODs);
//   * kernel.sync_domain().inc() (the temporal-decoupling annotation -- orders of magnitude
//     cheaper than any of the above);
//   * timed event notification through the scheduler queue.
//
// Usage: bench_kernel_microbench [--json] [Google Benchmark flags]
//
// --json additionally writes BENCH_kernel_microbench.json with one row per
// benchmark (name, iterations, per-item real time, items/s) so the kernel
// primitive costs feed the same perf trajectory as the model-level benches.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench_json.h"
#include "kernel/sync_domain.h"
#include "kernel/event.h"
#include "kernel/kernel.h"

namespace {

using tdsim::Event;
using tdsim::Kernel;
using tdsim::MethodOptions;
using namespace tdsim::time_literals;

constexpr std::uint64_t kOpsPerBatch = 1 << 14;

/// One wait(duration) = suspend + scheduler turn + resume.
void BM_ThreadTimedWait(benchmark::State& state) {
  for (auto _ : state) {
    Kernel kernel;
    kernel.spawn_thread("waiter", [&] {
      for (std::uint64_t i = 0; i < kOpsPerBatch; ++i) {
        tdsim::wait(1_ns);
      }
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerBatch);
}
BENCHMARK(BM_ThreadTimedWait);

/// Two threads alternating on a pair of events: one handover = two context
/// switches, the tightest producer/consumer synchronization pattern.
void BM_ThreadEventPingPong(benchmark::State& state) {
  for (auto _ : state) {
    Kernel kernel;
    Event ping(kernel, "ping");
    Event pong(kernel, "pong");
    kernel.spawn_thread("a", [&] {
      for (std::uint64_t i = 0; i < kOpsPerBatch; ++i) {
        ping.notify_delta();
        tdsim::wait(pong);
      }
    });
    kernel.spawn_thread("b", [&] {
      for (std::uint64_t i = 0; i < kOpsPerBatch; ++i) {
        tdsim::wait(ping);
        pong.notify_delta();
      }
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerBatch);
}
BENCHMARK(BM_ThreadEventPingPong);

/// One method activation per simulated nanosecond: no stack, no switch.
void BM_MethodActivation(benchmark::State& state) {
  for (auto _ : state) {
    Kernel kernel;
    std::uint64_t remaining = kOpsPerBatch;
    kernel.spawn_method("ticker", [&] {
      if (--remaining > 0) {
        tdsim::next_trigger(1_ns);
      }
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerBatch);
}
BENCHMARK(BM_MethodActivation);

/// The decoupling annotation itself: a local-date addition.
void BM_IncAnnotation(benchmark::State& state) {
  for (auto _ : state) {
    Kernel kernel;
    kernel.spawn_thread("annotator", [&] {
      for (std::uint64_t i = 0; i < kOpsPerBatch; ++i) {
        kernel.sync_domain().inc(1_ns);
      }
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerBatch);
}
BENCHMARK(BM_IncAnnotation);

/// inc() + sync() -- equivalent to wait(), paper SII.B; the pair costs a
/// context switch, confirming that removing sync() is what pays.
void BM_IncThenSync(benchmark::State& state) {
  for (auto _ : state) {
    Kernel kernel;
    kernel.spawn_thread("syncer", [&] {
      for (std::uint64_t i = 0; i < kOpsPerBatch; ++i) {
        kernel.sync_domain().inc(1_ns);
        kernel.sync_domain().sync();
      }
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerBatch);
}
BENCHMARK(BM_IncThenSync);

/// Timed notification scheduling + firing through the priority queue.
void BM_TimedEventNotify(benchmark::State& state) {
  for (auto _ : state) {
    Kernel kernel;
    Event tick(kernel, "tick");
    std::uint64_t remaining = kOpsPerBatch;
    MethodOptions opts;
    opts.sensitivity.push_back(&tick);
    kernel.spawn_method(
        "scheduler",
        [&] {
          if (remaining-- > 0) {
            tick.notify(1_ns);
          }
        },
        opts);
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerBatch);
}
BENCHMARK(BM_TimedEventNotify);

/// Console reporting plus one benchjson row per benchmark run.
class JsonRowReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonRowReporter(benchjson::Report& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    // No error/skip filtering: the field naming changed across Google
    // Benchmark releases, and these benches abort on internal errors.
    for (const Run& run : runs) {
      benchjson::Row& row = report_.row();
      row.add("name", run.benchmark_name())
          .add("iterations", static_cast<std::uint64_t>(run.iterations))
          .add("real_time_per_iter_ns", run.GetAdjustedRealTime());
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        row.add("items_per_second", static_cast<double>(items->second));
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  benchjson::Report& report_;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip our --json flag before Google Benchmark parses the rest.
  bool emit_json = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (emit_json) {
    benchjson::Report report("kernel_microbench");
    JsonRowReporter reporter(report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    if (!report.write()) {
      return 1;
    }
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
