// The SyncDomain subsystem proper: quantum policy on LocalClock, per-cause
// synchronization statistics, offsets across repeated Kernel::run() calls,
// and generation-safe method re-arm vs. static sensitivity.
#include <gtest/gtest.h>

#include <vector>

#include "core/smart_fifo.h"
#include "kernel/event.h"
#include "kernel/kernel.h"
#include "kernel/local_clock.h"
#include "kernel/report.h"
#include "kernel/sync_domain.h"

namespace tdsim {
namespace {

TEST(SyncDomain, KernelQuantumDelegatesToDomain) {
  Kernel k;
  k.set_global_quantum(3_us);
  EXPECT_EQ(k.sync_domain().quantum(), 3_us);
  k.sync_domain().set_quantum(7_ns);
  EXPECT_EQ(k.global_quantum(), 7_ns);
}

TEST(SyncDomain, CurrentClockIsTheProcessClock) {
  Kernel k;
  Process* p = nullptr;
  p = k.spawn_thread("t", [&] {
    EXPECT_EQ(&k.sync_domain().current_clock(), &p->clock());
  });
  k.run();
}

TEST(SyncDomain, ZeroQuantumDemandsSyncAtEveryAnnotation) {
  // The paper: decoupling is disabled by a zero quantum.
  Kernel k;
  k.spawn_thread("t", [&] {
    SyncDomain& sd = k.sync_domain();
    EXPECT_EQ(sd.quantum(), Time{});
    EXPECT_TRUE(sd.needs_sync());  // zero quantum: always
    sd.set_quantum(5_ns);
    EXPECT_FALSE(sd.needs_sync());
    sd.inc(4_ns);
    EXPECT_FALSE(sd.needs_sync());
    sd.inc(1_ns);
    EXPECT_TRUE(sd.needs_sync());  // offset reached the quantum
  });
  k.run();
}

TEST(SyncDomain, QuantumExceededPolicyOnForeignClock) {
  Kernel k;
  k.sync_domain().set_quantum(10_ns);
  Process* p = k.spawn_thread("t", [&] {
    k.sync_domain().inc(25_ns);
    k.wait(1_ns);
  });
  k.spawn_thread("observer", [&] {
    k.wait_delta();
    EXPECT_TRUE(k.sync_domain().quantum_exceeded(p->clock()));
    EXPECT_EQ(p->clock().offset(), 25_ns);
  });
  k.run();
}

TEST(SyncDomain, OffsetCarriedAcrossRepeatedRunCalls) {
  // A process suspended between run() calls keeps its decoupling offset;
  // the local date keeps floating above the (resumed) global date.
  Kernel k;
  Event e(k, "wake");
  Process* t = k.spawn_thread("t", [&] {
    k.sync_domain().inc(10_ns);
    k.wait(e);
    EXPECT_EQ(k.sync_domain().local_offset(), 10_ns);
    EXPECT_EQ(k.sync_domain().local_time_stamp(), k.now() + 10_ns);
    k.sync_domain().sync();
  });
  k.run();  // t is blocked on the event, decoupled by 10 ns
  EXPECT_EQ(t->clock().offset(), 10_ns);
  EXPECT_FALSE(t->clock().is_synchronized());

  e.notify(2_ns);
  k.run();  // t wakes at 2 ns with offset 10 ns, then syncs to 12 ns
  EXPECT_EQ(k.now(), 12_ns);
  EXPECT_TRUE(t->clock().is_synchronized());
}

TEST(SyncDomain, OffsetCarriedAcrossBoundedRuns) {
  // run(until) pauses the simulation mid-decoupling; the next run() resumes
  // with bit-exact dates.
  Kernel k;
  std::vector<Time> sync_dates;
  k.spawn_thread("t", [&] {
    for (int i = 0; i < 4; ++i) {
      k.sync_domain().inc(10_ns);
      k.sync_domain().sync();
      sync_dates.push_back(k.now());
    }
  });
  k.run(15_ns);
  EXPECT_EQ(k.now(), 15_ns);
  k.run();
  EXPECT_EQ(sync_dates,
            (std::vector<Time>{10_ns, 20_ns, 30_ns, 40_ns}));
}

TEST(SyncDomain, MethodRearmOverridesStaticSensitivity) {
  // While a method_sync_trigger() re-arm is pending, the method's static
  // sensitivity is suppressed (SystemC next_trigger semantics); it comes
  // back in force after the re-arm activation.
  Kernel k;
  Event e(k, "e");
  std::vector<Time> activations;
  bool rearmed_once = false;
  MethodOptions opts;
  opts.sensitivity.push_back(&e);
  k.spawn_method("m", [&] {
    activations.push_back(k.now());
    if (!rearmed_once) {
      rearmed_once = true;
      k.sync_domain().inc(5_ns);
      k.sync_domain().method_sync_trigger();
    }
  }, opts);
  k.spawn_thread("driver", [&] {
    k.wait(2_ns);
    e.notify();  // suppressed: the re-arm (due at 5 ns) is pending
    k.wait(5_ns);
    e.notify();  // 7 ns: static sensitivity active again
  });
  k.run();
  EXPECT_EQ(activations, (std::vector<Time>{Time{}, 5_ns, 7_ns}));
}

TEST(SyncDomain, MethodRearmIsGenerationSafeLastCallWins) {
  // Two re-arms in one activation: the second supersedes the first (the
  // wake-generation bump invalidates the stale timed entry), so the method
  // runs once at the later date, not twice.
  Kernel k;
  std::vector<Time> activations;
  bool first = true;
  k.spawn_method("m", [&] {
    activations.push_back(k.now());
    if (first) {
      first = false;
      SyncDomain& sd = k.sync_domain();
      sd.inc(3_ns);
      sd.method_sync_trigger();
      sd.inc(5_ns);  // now 8 ns ahead
      sd.method_sync_trigger();
    }
  });
  k.run();
  EXPECT_EQ(activations, (std::vector<Time>{Time{}, 8_ns}));
  EXPECT_EQ(k.stats().method_rearms, 2u);
  // Re-arms count as requests too, keeping the bookkeeping invariant.
  EXPECT_EQ(k.stats().sync_requests,
            k.stats().syncs_performed() + k.stats().syncs_elided);
}

TEST(SyncDomain, SyncOnForeignClockIsError) {
  // Only the owner may sync its clock: suspension acts on the current
  // process, so a cross-process sync would corrupt both timings.
  Kernel k;
  Process* a = k.spawn_thread("a", [&] {
    k.sync_domain().inc(50_ns);
    k.wait(10_ns);
  });
  k.spawn_thread("b", [&] {
    k.wait_delta();
    a->clock().sync();
  });
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(SyncDomain, PerCauseAccountingFifoEmpty) {
  Kernel k;
  SmartFifo<int> fifo(k, "f", 4);
  k.spawn_thread("reader", [&] {
    k.sync_domain().inc(5_ns);
    EXPECT_EQ(fifo.read(), 42);
  });
  k.spawn_thread("writer", [&] {
    k.wait(20_ns);
    fifo.write(42);
  });
  k.run();
  // The reader arrived decoupled at an empty FIFO: one performed sync,
  // attributed to FifoEmpty.
  EXPECT_EQ(k.stats().syncs(SyncCause::FifoEmpty), 1u);
  EXPECT_EQ(k.stats().syncs_performed(), 1u);
}

TEST(SyncDomain, PerCauseAccountingFifoFullMonitorExplicit) {
  Kernel k;
  SmartFifo<int> fifo(k, "f", 1);
  k.spawn_thread("writer", [&] {
    SyncDomain& sd = k.sync_domain();
    sd.inc(5_ns);
    fifo.write(1);
    fifo.write(2);  // internally full -> performed sync (FifoFull)
    sd.inc(3_ns);
    sd.sync();  // Explicit
  });
  k.spawn_thread("reader", [&] {
    k.wait(20_ns);
    (void)fifo.read();
    (void)fifo.read();
  });
  k.spawn_thread("monitor", [&] {
    k.sync_domain().inc(1_ns);
    (void)fifo.get_size();  // Monitor (performed: offset was non-zero)
  });
  k.run();
  const KernelStats& s = k.stats();
  EXPECT_EQ(s.syncs(SyncCause::FifoFull), 1u);
  EXPECT_EQ(s.syncs(SyncCause::Monitor), 1u);
  EXPECT_EQ(s.syncs(SyncCause::Explicit), 1u);
  // Bookkeeping invariant: every request either performed or elided.
  EXPECT_EQ(s.sync_requests, s.syncs_performed() + s.syncs_elided);
  // Domain accessors read the same books.
  EXPECT_EQ(k.sync_domain().syncs(SyncCause::FifoFull), 1u);
  EXPECT_EQ(k.sync_domain().syncs_performed(), s.syncs_performed());
}

TEST(SyncDomain, StatsDifferenceCoversSyncCounters) {
  KernelStats a;
  a.sync_requests = 10;
  a.syncs_elided = 4;
  a.syncs_by_cause[static_cast<std::size_t>(SyncCause::Quantum)] = 6;
  a.method_rearms = 2;
  KernelStats b;
  b.sync_requests = 3;
  b.syncs_elided = 1;
  b.syncs_by_cause[static_cast<std::size_t>(SyncCause::Quantum)] = 2;
  b.method_rearms = 1;
  const KernelStats d = a - b;
  EXPECT_EQ(d.sync_requests, 7u);
  EXPECT_EQ(d.syncs_elided, 3u);
  EXPECT_EQ(d.syncs(SyncCause::Quantum), 4u);
  EXPECT_EQ(d.method_rearms, 1u);
  EXPECT_EQ(d.syncs_performed(), 4u);
}

TEST(SyncDomain, DatesMatchSeedBehavior) {
  // The subsystem must reproduce the seed's (shim-era) date arithmetic
  // bit-exactly: inc(7); sync(); inc(9); sync() lands on 7 ns then 16 ns.
  // (The deprecated td:: shims themselves are gone since PR 2.)
  Kernel a;
  std::vector<Time> via_domain;
  a.spawn_thread("t", [&] {
    SyncDomain& sd = a.sync_domain();
    sd.inc(7_ns);
    sd.sync();
    via_domain.push_back(a.now());
    sd.inc(9_ns);
    sd.sync();
    via_domain.push_back(a.now());
  });
  a.run();
  EXPECT_EQ(via_domain, (std::vector<Time>{7_ns, 16_ns}));
}

}  // namespace
}  // namespace tdsim
