// Quickstart: a producer and a consumer communicating through a Smart FIFO
// with temporal decoupling.
//
// The producer annotates 20 ns per item with SyncDomain::inc() (no context
// switch) and the consumer 15 ns; the Smart FIFO carries the dates across, so both
// processes observe exactly the timing a fully synchronized model would --
// while the kernel only switches contexts when the FIFO is internally full
// or empty.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/smart_fifo.h"
#include "kernel/kernel.h"
#include "kernel/sync_domain.h"

using namespace tdsim;  // Kernel, Time, wait(), ...

int main() {
  Kernel kernel;
  SmartFifo<int> fifo(kernel, "fifo", /*depth=*/2);

  kernel.spawn_thread("producer", [&] {
    SyncDomain& td = kernel.sync_domain();
    for (int i = 1; i <= 5; ++i) {
      fifo.write(i);  // may bump our local date to the cell's freeing date
      std::printf("producer: wrote %d at %s\n", i,
                  td.local_time_stamp().to_string().c_str());
      td.inc(Time(20, TimeUnit::NS));  // timing annotation, no context switch
    }
  });

  kernel.spawn_thread("consumer", [&] {
    SyncDomain& td = kernel.sync_domain();
    for (int i = 0; i < 5; ++i) {
      td.inc(Time(15, TimeUnit::NS));
      const int value = fifo.read();  // bumps us to the insertion date
      std::printf("consumer: read  %d at %s\n", value,
                  td.local_time_stamp().to_string().c_str());
    }
    td.sync();  // land back on the global date before reporting
    std::printf("consumer: done, global date %s\n",
                sim_time_stamp().to_string().c_str());
  });

  kernel.run();
  std::printf("simulation ended at %s after %llu context switches\n",
              kernel.now().to_string().c_str(),
              static_cast<unsigned long long>(
                  kernel.stats().context_switches));
  return 0;
}
