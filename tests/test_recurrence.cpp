// Differential property test of the Smart FIFO against the closed-form
// bounded-Kahn timing recurrence (DESIGN.md SS6).
//
// Reference semantics (regular FIFO + sync per access, depth N):
//
//   ins_i  = max(req_w_i, free_{i-N})     (write i completes)
//   ret_j  = max(req_r_j, ins_j)          (read j returns)
//   free_j = ret_j                        (read j frees a cell)
//
// where req_w_i / req_r_j are the dates at which the writer/reader *arrive*
// at their i-th/j-th access (their local date after the preceding inc()s).
// The Smart FIFO must produce exactly ins_i as the writer's date after
// write i and ret_j as the reader's date after read j, for any pair of
// annotation sequences and any depth -- without a single synchronization
// beyond internal full/empty blocking.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

#include "kernel/sync_domain.h"
#include "core/smart_fifo.h"
#include "kernel/kernel.h"

namespace tdsim {
namespace {

/// Closed-form evaluation of the recurrence.
struct Expected {
  std::vector<Time> insertion;  ///< ins_i
  std::vector<Time> ret;        ///< ret_j
};

Expected evaluate(const std::vector<Time>& write_gaps,
                  const std::vector<Time>& read_gaps, std::size_t depth) {
  const std::size_t n = write_gaps.size();
  Expected e;
  e.insertion.resize(n);
  e.ret.resize(n);
  Time writer_date;
  Time reader_date;
  for (std::size_t i = 0; i < n; ++i) {
    // Writer arrives after its annotation gap...
    writer_date += write_gaps[i];
    Time req_w = writer_date;
    // ...and waits for the cell freed by read i-depth.
    if (i >= depth) {
      req_w = std::max(req_w, e.ret[i - depth]);
    }
    e.insertion[i] = req_w;
    writer_date = req_w;

    // The reader of item i (reads and writes are in lockstep order in a
    // FIFO; evaluating in one pass is valid because ret_j only depends on
    // ins_j and the reader's own progress).
    reader_date += read_gaps[i];
    e.ret[i] = std::max(reader_date, e.insertion[i]);
    reader_date = e.ret[i];
  }
  return e;
}

struct Observed {
  std::vector<Time> insertion;
  std::vector<Time> ret;
};

Observed run_smart(const std::vector<Time>& write_gaps,
                   const std::vector<Time>& read_gaps, std::size_t depth) {
  const std::size_t n = write_gaps.size();
  Kernel kernel;
  SmartFifo<std::uint32_t> fifo(kernel, "fifo", depth);
  Observed o;
  o.insertion.resize(n);
  o.ret.resize(n);

  kernel.spawn_thread("writer", [&] {
    for (std::size_t i = 0; i < n; ++i) {
      kernel.sync_domain().inc(write_gaps[i]);
      fifo.write(static_cast<std::uint32_t>(i));
      o.insertion[i] = kernel.sync_domain().local_time_stamp();
    }
  });
  kernel.spawn_thread("reader", [&] {
    for (std::size_t j = 0; j < n; ++j) {
      kernel.sync_domain().inc(read_gaps[j]);
      const std::uint32_t value = fifo.read();
      EXPECT_EQ(value, j);  // data order is FIFO order
      o.ret[j] = kernel.sync_domain().local_time_stamp();
    }
  });
  kernel.run();
  return o;
}

void check(const std::vector<Time>& write_gaps,
           const std::vector<Time>& read_gaps, std::size_t depth) {
  const Expected expected = evaluate(write_gaps, read_gaps, depth);
  const Observed observed = run_smart(write_gaps, read_gaps, depth);
  for (std::size_t i = 0; i < write_gaps.size(); ++i) {
    ASSERT_EQ(observed.insertion[i], expected.insertion[i])
        << "write " << i << " at depth " << depth;
    ASSERT_EQ(observed.ret[i], expected.ret[i])
        << "read " << i << " at depth " << depth;
  }
}

std::vector<Time> gaps_ns(std::initializer_list<std::uint64_t> ns) {
  std::vector<Time> gaps;
  for (std::uint64_t v : ns) {
    gaps.push_back(Time(v, TimeUnit::NS));
  }
  return gaps;
}

TEST(Recurrence, PaperFig2Example) {
  // The Fig. 1/2 example with the production-time annotation placed
  // before each write (20 ns to produce a value, 15 ns to consume one):
  // writes land at 20/40/60 ns; the reader arrives at 15/35/55 ns and
  // waits 5 ns for data each time -- exactly the dates of Fig. 2.
  const auto writes = gaps_ns({20, 20, 20});
  const auto reads = gaps_ns({15, 15, 15});
  check(writes, reads, 1);
  // And the concrete dates, independently of the evaluator:
  const Observed o = run_smart(writes, reads, 1);
  EXPECT_EQ(o.insertion[0], Time(20, TimeUnit::NS));
  EXPECT_EQ(o.ret[0], Time(20, TimeUnit::NS));
  EXPECT_EQ(o.insertion[1], Time(40, TimeUnit::NS));
  EXPECT_EQ(o.ret[1], Time(40, TimeUnit::NS));
  EXPECT_EQ(o.insertion[2], Time(60, TimeUnit::NS));
  EXPECT_EQ(o.ret[2], Time(60, TimeUnit::NS));
}

TEST(Recurrence, AnnotationAfterWritePlacement) {
  // The same example with the annotation *after* each write (write; inc 20):
  // writes land at 0/20/40 ns and the reader is never blocked.
  const auto writes = gaps_ns({0, 20, 20});
  const auto reads = gaps_ns({15, 15, 15});
  check(writes, reads, 1);
  const Observed o = run_smart(writes, reads, 1);
  EXPECT_EQ(o.ret[0], Time(15, TimeUnit::NS));
  EXPECT_EQ(o.ret[1], Time(30, TimeUnit::NS));
  EXPECT_EQ(o.ret[2], Time(45, TimeUnit::NS));
}

TEST(Recurrence, FastWriterBlocksOnDepth) {
  // Writer produces instantly; depth-2 FIFO; slow reader paces everything:
  // write i (i >= 2) must carry read (i-2)'s return date.
  check(gaps_ns({0, 0, 0, 0, 0, 0}), gaps_ns({10, 10, 10, 10, 10, 10}), 2);
}

TEST(Recurrence, FastReaderWaitsForInsertions) {
  check(gaps_ns({10, 10, 10, 10, 10, 10}), gaps_ns({0, 0, 0, 0, 0, 0}), 3);
}

TEST(Recurrence, ZeroGapsBothSides) {
  check(gaps_ns({0, 0, 0, 0}), gaps_ns({0, 0, 0, 0}), 1);
}

class RecurrenceRandom
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {};

TEST_P(RecurrenceRandom, RandomAnnotationSequences) {
  const auto [seed, depth] = GetParam();
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::uint64_t> gap(0, 30);
  constexpr std::size_t kWords = 300;
  std::vector<Time> writes, reads;
  for (std::size_t i = 0; i < kWords; ++i) {
    writes.push_back(Time(gap(rng), TimeUnit::NS));
    reads.push_back(Time(gap(rng), TimeUnit::NS));
  }
  check(writes, reads, depth);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecurrenceRandom,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                       ::testing::Values<std::size_t>(1, 2, 3, 5, 8, 16)));

TEST(Recurrence, BurstsFollowTheSameRecurrence) {
  // write_burst/read_burst must be equivalent to per-word accesses with
  // the same per-word annotation.
  constexpr std::size_t kDepth = 4;
  constexpr std::size_t kWords = 64;
  std::vector<Time> writes(kWords, Time(2, TimeUnit::NS));
  std::vector<Time> reads(kWords, Time(3, TimeUnit::NS));
  // Per-word model: gap *before* each access; bursts put the inc *after*
  // each word, so shift by one (first gap zero).
  std::vector<Time> burst_writes = writes, burst_reads = reads;
  burst_writes.front() = Time{};
  burst_reads.front() = Time{};
  const Expected expected = evaluate(burst_writes, burst_reads, kDepth);

  Kernel kernel;
  SmartFifo<std::uint32_t> fifo(kernel, "fifo", kDepth);
  std::vector<Time> observed_last(1);
  kernel.spawn_thread("writer", [&] {
    std::vector<std::uint32_t> data(kWords);
    for (std::size_t i = 0; i < kWords; ++i) {
      data[i] = static_cast<std::uint32_t>(i);
    }
    fifo.write_burst(data.begin(), data.end(), Time(2, TimeUnit::NS));
  });
  kernel.spawn_thread("reader", [&] {
    std::vector<std::uint32_t> out;
    fifo.read_burst(std::back_inserter(out), kWords, Time(3, TimeUnit::NS));
    // After the burst the reader's local date is the last return date plus
    // the trailing per-word inc.
    observed_last[0] = kernel.sync_domain().local_time_stamp();
    EXPECT_EQ(out.size(), kWords);
  });
  kernel.run();
  EXPECT_EQ(observed_last[0], expected.ret.back() + Time(3, TimeUnit::NS));
}

}  // namespace
}  // namespace tdsim
