#include "kernel/report.h"

#include <atomic>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <utility>

namespace tdsim {
namespace {

// Two locks: g_handler_mutex guards the handler slot only (so set_handler
// never blocks behind a slow handler invocation), g_emit_mutex serializes
// handler invocations across threads. The emission lock is recursive so a
// handler may itself emit() on the same thread without deadlocking.
std::mutex g_handler_mutex;
std::recursive_mutex g_emit_mutex;
Report::Handler g_handler;
std::atomic<std::uint64_t> g_warning_count{0};

void default_sink(Severity severity, const std::string& message) {
  switch (severity) {
    case Severity::Info:
      std::cout << "[tdsim info] " << message << '\n';
      break;
    case Severity::Warning:
      std::cerr << "[tdsim warning] " << message << '\n';
      break;
    case Severity::Error:
      std::cerr << "[tdsim error] " << message << '\n';
      break;
  }
}

void dispatch(Severity severity, const std::string& message) {
  if (severity == Severity::Warning) {
    g_warning_count.fetch_add(1, std::memory_order_relaxed);
  }
  Report::Handler handler;
  {
    std::lock_guard<std::mutex> lock(g_handler_mutex);
    handler = g_handler;
  }
  std::lock_guard<std::recursive_mutex> emit_lock(g_emit_mutex);
  if (handler) {
    handler(severity, message);
  } else {
    default_sink(severity, message);
  }
}

}  // namespace

void Report::emit(Severity severity, const std::string& message) {
  dispatch(severity, message);
  if (severity == Severity::Error) {
    throw SimulationError(message);
  }
}

void Report::notify(Severity severity, const std::string& message) {
  dispatch(severity, message);
}

void Report::error(const std::string& message) {
  emit(Severity::Error, message);
  // emit() throws for errors; this is unreachable but keeps [[noreturn]]
  // honest for the compiler.
  throw SimulationError(message);
}

Report::Handler Report::set_handler(Handler handler) {
  std::lock_guard<std::mutex> lock(g_handler_mutex);
  return std::exchange(g_handler, std::move(handler));
}

std::uint64_t Report::warning_count() {
  return g_warning_count.load(std::memory_order_relaxed);
}

}  // namespace tdsim
