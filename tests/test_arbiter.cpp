// Side arbiters: several processes sharing a Smart FIFO side must go
// through an arbiter so access dates never decrease (paper SIII).
#include "core/arbiter.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "kernel/sync_domain.h"
#include "core/smart_fifo.h"
#include "kernel/kernel.h"
#include "kernel/report.h"

namespace tdsim {
namespace {

TEST(Arbiter, SharedWriteSideWithoutArbiterFails) {
  Kernel k;
  SmartFifo<int> f(k, "f", 8);
  for (int w = 0; w < 2; ++w) {
    k.spawn_thread("w" + std::to_string(w), [&, w] {
      // The first writer (executing first) uses a slow pace, so the second
      // writer's dates fall behind the dates already recorded on the side.
      for (int i = 0; i < 3; ++i) {
        k.sync_domain().inc(Time(static_cast<std::uint64_t>(60 - 50 * w), TimeUnit::NS));
        f.write(w * 10 + i);
      }
    });
  }
  k.spawn_thread("rd", [&] {
    for (int i = 0; i < 6; ++i) {
      (void)f.read();
    }
  });
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(Arbiter, SharedWriteSideWithArbiterWorks) {
  Kernel k;
  SmartFifo<int> f(k, "f", 8);
  WriteArbiter<int> arbiter(f);
  std::multiset<int> got;
  for (int w = 0; w < 3; ++w) {
    k.spawn_thread("w" + std::to_string(w), [&, w] {
      for (int i = 0; i < 4; ++i) {
        k.sync_domain().inc(Time(static_cast<std::uint64_t>(7 + 13 * w), TimeUnit::NS));
        arbiter.write(w * 100 + i);
      }
    });
  }
  k.spawn_thread("rd", [&] {
    for (int i = 0; i < 12; ++i) {
      got.insert(f.read());
      k.sync_domain().inc(2_ns);
    }
  });
  k.run();
  EXPECT_EQ(got.size(), 12u);
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(got.count(w * 100 + i), 1u);
    }
  }
}

TEST(Arbiter, SharedReadSideWithArbiterWorks) {
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  ReadArbiter<int> arbiter(f);
  std::multiset<int> got;
  k.spawn_thread("wr", [&] {
    for (int i = 0; i < 10; ++i) {
      f.write(i);
      k.sync_domain().inc(5_ns);
    }
  });
  for (int r = 0; r < 2; ++r) {
    k.spawn_thread("r" + std::to_string(r), [&, r] {
      for (int i = 0; i < 5; ++i) {
        k.sync_domain().inc(Time(static_cast<std::uint64_t>(3 + 11 * r), TimeUnit::NS));
        got.insert(arbiter.read());
      }
    });
  }
  k.run();
  EXPECT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got.count(i), 1u);
  }
}

TEST(Arbiter, ArbitratedAccessesAreSynchronized) {
  // The arbiter trades decoupling for ordering: after an arbitrated
  // access the caller is synchronized.
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  WriteArbiter<int> arbiter(f);
  k.spawn_thread("w", [&] {
    k.sync_domain().inc(42_ns);
    arbiter.write(1);
    EXPECT_TRUE(k.sync_domain().is_synchronized());
    EXPECT_EQ(k.now(), 42_ns);
  });
  k.spawn_thread("rd", [&] { (void)f.read(); });
  k.run();
}

TEST(Arbiter, IsFullAndIsEmptyForwarded) {
  Kernel k;
  SmartFifo<int> f(k, "f", 1);
  WriteArbiter<int> wa(f);
  ReadArbiter<int> ra(f);
  k.spawn_thread("t", [&] {
    EXPECT_TRUE(ra.is_empty());
    EXPECT_FALSE(wa.is_full());
    f.write(1);
    EXPECT_FALSE(ra.is_empty());
    EXPECT_TRUE(wa.is_full());
  });
  k.run();
}

}  // namespace
}  // namespace tdsim
