// Signal channel with SystemC evaluate/update semantics: a write becomes
// visible in the next delta cycle and fires value_changed_event() only when
// the value actually changed.
#pragma once

#include <string>
#include <utility>

#include "kernel/domain_link.h"
#include "kernel/event.h"
#include "kernel/kernel.h"

namespace tdsim {

template <typename T>
class Signal : public UpdateListener {
 public:
  Signal(Kernel& kernel, std::string name, T initial = T{})
      : kernel_(kernel),
        name_(std::move(name)),
        current_(initial),
        next_(initial),
        value_changed_(kernel, name_ + ".value_changed") {}

  /// Current (committed) value.
  const T& read() const {
    domain_link_.touch(kernel_.current_domain());
    return current_;
  }

  /// Schedules `value` to become visible at the next delta boundary. The
  /// last write in an evaluation phase wins.
  void write(const T& value) {
    domain_link_.touch(kernel_.current_domain());
    next_ = value;
    if (!update_requested_) {
      update_requested_ = true;
      kernel_.request_update(this);
    }
  }

  /// Notified (delta) whenever the committed value changes.
  Event& value_changed_event() { return value_changed_; }

  const std::string& name() const { return name_; }

 private:
  void update() override {
    update_requested_ = false;
    if (!(next_ == current_)) {
      current_ = next_;
      value_changed_.notify_delta();
    }
  }

  Kernel& kernel_;
  std::string name_;
  /// Readers and writers may span domains; mutable because read() is
  /// logically const. Labeled for Kernel::explain_group().
  mutable DomainLink domain_link_{name_};
  T current_;
  T next_;
  bool update_requested_ = false;
  Event value_changed_;
};

}  // namespace tdsim
