// Mutation testing (paper SIV.A): "we select a line in the Smart FIFO
// implementation, we modify something, we run the test suite again and
// check that at least one test fails". Here every mutation is a runtime
// hook (core/mutations.h); for each one we run a small battery of
// dual-mode scenarios and assert that at least one of them detects the
// mutation -- i.e. the sorted traces diverge from the reference, or the
// run errors out.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/mutations.h"
#include "kernel/report.h"
#include "trace/scenario.h"

namespace tdsim {
namespace {

using trace::Mode;
using trace::Scenario;
using trace::ScenarioEnv;

/// The detection battery: scenarios exercising blocking paths, the
/// non-blocking guarded pattern, and the monitor interface.
std::vector<Scenario> detection_battery() {
  std::vector<Scenario> battery;

  // Producer/consumer over depth 1 and 4 with both rate orderings.
  struct Rate {
    std::size_t depth;
    Time wp, rp;
  };
  for (const Rate& r : {Rate{1, 20_ns, 15_ns}, Rate{4, 2_ns, 30_ns},
                        Rate{4, 30_ns, 2_ns}, Rate{2, 10_ns, 10_ns}}) {
    battery.push_back([r](ScenarioEnv& env) {
      auto& fifo = env.fifo("f", r.depth);
      env.kernel().spawn_thread("writer", [&env, &fifo, r] {
        for (int i = 0; i < 20; ++i) {
          fifo.write(i);
          env.log("wrote", static_cast<std::uint64_t>(i));
          env.delay(r.wp);
        }
      });
      env.kernel().spawn_thread("reader", [&env, &fifo, r] {
        for (int i = 0; i < 20; ++i) {
          env.delay(r.rp);
          env.log("read", static_cast<std::uint64_t>(fifo.read()));
        }
      });
    });
  }

  // Monitor polling during traffic (catches get_size mutations).
  battery.push_back([](ScenarioEnv& env) {
    auto& fifo = env.fifo("f", 3);
    env.kernel().spawn_thread("writer", [&env, &fifo] {
      for (int i = 0; i < 15; ++i) {
        fifo.write(i);
        env.delay(10_ns);
      }
    });
    env.kernel().spawn_thread("reader", [&env, &fifo] {
      for (int i = 0; i < 15; ++i) {
        env.delay(17_ns);
        env.log("read", static_cast<std::uint64_t>(fifo.read()));
      }
    });
    env.kernel().spawn_thread("monitor", [&env, &fifo] {
      for (int i = 0; i < 40; ++i) {
        env.kernel().wait(Time::from_ps(7001));
        env.log("size", fifo.get_size());
      }
    });
  });

  // Method reader with the guarded non-blocking pattern (catches is_empty
  // and delayed-notification mutations).
  battery.push_back([](ScenarioEnv& env) {
    auto& fifo = env.fifo("f", 3);
    env.kernel().spawn_thread("writer", [&env, &fifo] {
      for (int i = 0; i < 12; ++i) {
        fifo.write(i);
        env.delay(9_ns);
      }
    });
    auto count = std::make_shared<int>(0);
    env.kernel().spawn_method("reader", [&env, &fifo, count] {
      while (*count < 12) {
        if (fifo.is_empty()) {
          env.kernel().next_trigger(fifo.not_empty_event());
          return;
        }
        env.log("read", static_cast<std::uint64_t>(fifo.read()));
        (*count)++;
      }
    });
  });

  // Polling consumer: a method samples is_empty() on a fixed cadence and
  // logs the boolean itself, then reads at most one item per poll. The
  // sampled external view must match the reference FIFO's real emptiness
  // (catches naive_is_empty even when read() would self-correct dates).
  battery.push_back([](ScenarioEnv& env) {
    auto& fifo = env.fifo("f", 3);
    env.kernel().spawn_thread("writer", [&env, &fifo] {
      for (int i = 0; i < 10; ++i) {
        fifo.write(i);
        env.delay(11_ns);
      }
    });
    auto polls = std::make_shared<int>(0);
    env.kernel().spawn_method("poller", [&env, &fifo, polls] {
      if ((*polls)++ >= 40) {
        return;
      }
      const bool empty = fifo.is_empty();
      env.log("empty", empty ? 1 : 0);
      if (!empty) {
        env.log("read", static_cast<std::uint64_t>(fifo.read()));
      }
      env.kernel().next_trigger(Time::from_ps(5001));
    });
  });

  // Polling producer: a method samples is_full() and writes when space is
  // really available (catches naive_is_full).
  battery.push_back([](ScenarioEnv& env) {
    auto& fifo = env.fifo("f", 2);
    auto next = std::make_shared<int>(0);
    auto polls = std::make_shared<int>(0);
    env.kernel().spawn_method("poller", [&env, &fifo, next, polls] {
      if ((*polls)++ >= 40 || *next >= 10) {
        return;
      }
      const bool full = fifo.is_full();
      env.log("full", full ? 1 : 0);
      if (!full) {
        fifo.write((*next)++);
      }
      env.kernel().next_trigger(Time::from_ps(5001));
    });
    env.kernel().spawn_thread("reader", [&env, &fifo] {
      for (int i = 0; i < 10; ++i) {
        env.delay(23_ns);
        env.log("read", static_cast<std::uint64_t>(fifo.read()));
      }
    });
  });

  // Method writer guarded by is_full (catches is_full mutations).
  battery.push_back([](ScenarioEnv& env) {
    auto& fifo = env.fifo("f", 2);
    auto next = std::make_shared<int>(0);
    env.kernel().spawn_method("writer", [&env, &fifo, next] {
      while (*next < 12) {
        if (fifo.is_full()) {
          env.kernel().next_trigger(fifo.not_full_event());
          return;
        }
        fifo.write((*next)++);
      }
    });
    env.kernel().spawn_thread("reader", [&env, &fifo] {
      for (int i = 0; i < 12; ++i) {
        env.delay(21_ns);
        env.log("read", static_cast<std::uint64_t>(fifo.read()));
      }
    });
  });

  return battery;
}

/// Returns true when at least one battery scenario detects the mutation:
/// its mutated SmartDecoupled trace differs from the Reference trace, or
/// the mutated run raises a simulation error.
bool mutation_detected(const SmartFifoMutations& mutations) {
  for (const Scenario& inner : detection_battery()) {
    // Guard against delta-cycle livelock (e.g. un-delayed notifications
    // re-triggering a guarded method forever at the same date).
    const Scenario scenario = [&inner](ScenarioEnv& env) {
      env.kernel().set_delta_cycle_limit(100000);
      inner(env);
    };
    auto reference = trace::run_scenario(scenario, Mode::Reference);
    try {
      // Bound the run: some mutations deadlock the simulation (that also
      // counts as detection, seen as a short/empty trace).
      auto mutated = trace::run_scenario(scenario, Mode::SmartDecoupled,
                                         &mutations, 1_ms);
      if (trace::compare_sorted(reference->recorder(), mutated->recorder())
              .has_value()) {
        return true;
      }
    } catch (const SimulationError&) {
      return true;
    }
  }
  return false;
}

/// Sanity: with no mutation, the battery must pass everywhere.
TEST(Mutation, NoMutationPassesEntireBattery) {
  SmartFifoMutations none;
  EXPECT_FALSE(none.any());
  EXPECT_FALSE(mutation_detected(none));
}

TEST(Mutation, SkipWriterTimeBumpIsCaught) {
  SmartFifoMutations m;
  m.skip_writer_time_bump = true;
  EXPECT_TRUE(mutation_detected(m));
}

TEST(Mutation, SkipReaderTimeBumpIsCaught) {
  SmartFifoMutations m;
  m.skip_reader_time_bump = true;
  EXPECT_TRUE(mutation_detected(m));
}

TEST(Mutation, SkipInsertionDateIsCaught) {
  SmartFifoMutations m;
  m.skip_insertion_date = true;
  EXPECT_TRUE(mutation_detected(m));
}

TEST(Mutation, SkipFreeingDateIsCaught) {
  SmartFifoMutations m;
  m.skip_freeing_date = true;
  EXPECT_TRUE(mutation_detected(m));
}

TEST(Mutation, NaiveIsEmptyIsCaught) {
  SmartFifoMutations m;
  m.naive_is_empty = true;
  EXPECT_TRUE(mutation_detected(m));
}

TEST(Mutation, NaiveIsFullIsCaught) {
  SmartFifoMutations m;
  m.naive_is_full = true;
  EXPECT_TRUE(mutation_detected(m));
}

TEST(Mutation, UndelayedExternalEventsIsCaught) {
  SmartFifoMutations m;
  m.undelayed_external_events = true;
  EXPECT_TRUE(mutation_detected(m));
}

TEST(Mutation, NaiveGetSizeIsCaught) {
  SmartFifoMutations m;
  m.naive_get_size = true;
  EXPECT_TRUE(mutation_detected(m));
}

TEST(Mutation, SkipSyncOnBlockIsCaught) {
  SmartFifoMutations m;
  m.skip_sync_on_block = true;
  EXPECT_TRUE(mutation_detected(m));
}

}  // namespace
}  // namespace tdsim
