#include "kernel/module.h"

namespace tdsim {

Module::Module(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)), full_name_(name_) {}

Module::Module(Module& parent, std::string name)
    : kernel_(parent.kernel_),
      parent_(&parent),
      name_(std::move(name)),
      full_name_(parent.full_name_ + "." + name_) {
  parent.children_.push_back(this);
}

SyncDomain& Module::default_domain() const {
  for (const Module* m = this; m != nullptr; m = m->parent_) {
    if (m->default_domain_ != nullptr) {
      return *m->default_domain_;
    }
  }
  return kernel_.sync_domain();
}

Process* Module::thread(const std::string& name, std::function<void()> body,
                        ThreadOptions opts) {
  if (opts.domain == nullptr) {
    opts.domain = &default_domain();
  }
  return kernel_.spawn_thread(full_name_ + "." + name, std::move(body), opts);
}

Process* Module::method(const std::string& name, std::function<void()> body,
                        MethodOptions opts) {
  if (opts.domain == nullptr) {
    opts.domain = &default_domain();
  }
  return kernel_.spawn_method(full_name_ + "." + name, std::move(body),
                              std::move(opts));
}

}  // namespace tdsim
