// Temporal-decoupling core: per-process LocalClock, SyncDomain quantum
// policy, the quantum keeper, and method-process offsets.
//
// Historically these behaviors lived behind the td:: free functions of
// core/local_time.h (removed after every consumer migrated); the tests
// exercise the subsystem directly through Kernel::sync_domain() and
// Process::clock() and must preserve bit-exact date behavior with the
// shim era.
#include <gtest/gtest.h>

#include <vector>

#include "kernel/kernel.h"
#include "kernel/local_clock.h"
#include "kernel/report.h"
#include "kernel/sync_domain.h"

namespace tdsim {
namespace {

TEST(LocalTime, IncAdvancesLocalDateNotGlobal) {
  Kernel k;
  k.spawn_thread("t", [&] {
    SyncDomain& sd = k.sync_domain();
    EXPECT_EQ(sd.local_time_stamp(), Time{});
    sd.inc(10_ns);
    EXPECT_EQ(sd.local_time_stamp(), 10_ns);
    EXPECT_EQ(k.now(), Time{});
    EXPECT_EQ(sd.local_offset(), 10_ns);
    EXPECT_FALSE(sd.is_synchronized());
  });
  k.run();
}

TEST(LocalTime, SyncCatchesGlobalUp) {
  Kernel k;
  k.spawn_thread("t", [&] {
    SyncDomain& sd = k.sync_domain();
    sd.inc(10_ns);
    sd.inc(5_ns);
    sd.sync();
    EXPECT_EQ(k.now(), 15_ns);
    EXPECT_EQ(sd.local_time_stamp(), 15_ns);
    EXPECT_TRUE(sd.is_synchronized());
  });
  k.run();
  EXPECT_EQ(k.now(), 15_ns);
}

TEST(LocalTime, SyncWhenSynchronizedIsFree) {
  Kernel k;
  k.spawn_thread("t", [&] {
    k.sync_domain().sync();
    k.sync_domain().sync();
  });
  k.run();
  // Only the initial dispatch; sync() of a synchronized process must not
  // yield.
  EXPECT_EQ(k.stats().context_switches, 1u);
  EXPECT_EQ(k.stats().sync_requests, 2u);
  EXPECT_EQ(k.stats().syncs_elided, 2u);
  EXPECT_EQ(k.stats().syncs_performed(), 0u);
}

TEST(LocalTime, IncThenSyncEquivalentToWait) {
  // The paper: "executing inc(d); sync() is equivalent to wait(d)".
  Kernel a;
  std::vector<Time> wait_stamps;
  a.spawn_thread("t", [&] {
    a.wait(20_ns);
    wait_stamps.push_back(a.now());
    a.wait(15_ns);
    wait_stamps.push_back(a.now());
  });
  a.run();

  Kernel b;
  std::vector<Time> td_stamps;
  b.spawn_thread("t", [&] {
    SyncDomain& sd = b.sync_domain();
    sd.inc(20_ns);
    sd.sync();
    td_stamps.push_back(b.now());
    sd.inc(15_ns);
    sd.sync();
    td_stamps.push_back(b.now());
  });
  b.run();

  EXPECT_EQ(wait_stamps, td_stamps);
}

TEST(LocalTime, AdvanceLocalToOnlyMovesForward) {
  Kernel k;
  k.spawn_thread("t", [&] {
    SyncDomain& sd = k.sync_domain();
    sd.inc(10_ns);
    sd.advance_local_to(5_ns);  // in the past: no-op
    EXPECT_EQ(sd.local_time_stamp(), 10_ns);
    sd.advance_local_to(30_ns);
    EXPECT_EQ(sd.local_time_stamp(), 30_ns);
  });
  k.run();
}

TEST(LocalTime, OffsetsAreIndependentPerProcess) {
  Kernel k;
  k.spawn_thread("a", [&] {
    k.sync_domain().inc(100_ns);
    EXPECT_EQ(k.sync_domain().local_offset(), 100_ns);
  });
  k.spawn_thread("b", [&] {
    EXPECT_EQ(k.sync_domain().local_offset(), Time{});
    k.sync_domain().inc(7_ns);
    EXPECT_EQ(k.sync_domain().local_offset(), 7_ns);
  });
  k.run();
}

TEST(LocalTime, ClockOfOtherProcess) {
  Kernel k;
  Process* a = k.spawn_thread("a", [&] {
    k.sync_domain().inc(100_ns);
    k.wait(1_ns);
  });
  k.spawn_thread("b", [&] {
    k.wait_delta();
    EXPECT_EQ(a->clock().now(), 100_ns);
    EXPECT_EQ(k.sync_domain().local_time_of(*a), 100_ns);
  });
  k.run();
}

TEST(LocalTime, MethodOffsetResetsEachActivation) {
  Kernel k;
  std::vector<Time> local_dates;
  int runs = 0;
  k.spawn_method("m", [&] {
    SyncDomain& sd = k.sync_domain();
    // Offset starts at zero every activation...
    EXPECT_EQ(sd.local_offset(), Time{});
    sd.inc(3_ns);
    local_dates.push_back(sd.local_time_stamp());
    if (++runs < 3) {
      sd.method_sync_trigger();  // re-arm at our local date
    }
  });
  k.run();
  EXPECT_EQ(local_dates, (std::vector<Time>{3_ns, 6_ns, 9_ns}));
}

TEST(LocalTime, SyncFromMethodWithOffsetIsError) {
  Kernel k;
  k.spawn_method("m", [&] {
    k.sync_domain().inc(1_ns);
    k.sync_domain().sync();
  });
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(LocalTime, SyncFromSynchronizedMethodIsAllowed) {
  // get_size() calls sync(); a synchronized method must be able to use it.
  Kernel k;
  k.spawn_method("m", [&] { k.sync_domain().sync(); });
  k.run();
}

TEST(LocalTime, MethodSyncTriggerFromThreadIsError) {
  Kernel k;
  k.spawn_thread("t", [&] { k.sync_domain().method_sync_trigger(); });
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(LocalTime, CurrentProcessOpsOutsideProcessAreErrors) {
  // The current-process conveniences need a running process of this kernel.
  Kernel k;
  EXPECT_THROW(k.sync_domain().inc(1_ns), SimulationError);
  EXPECT_THROW(k.sync_domain().sync(), SimulationError);
  EXPECT_THROW(k.sync_domain().local_offset(), SimulationError);
  // The ambient accessor additionally needs a running kernel at all.
  EXPECT_THROW(current_sync_domain(), SimulationError);
}

TEST(LocalTime, LocalTimeStampDegeneratesOutsideProcess) {
  // From scheduler/elaboration context the local date is the global date.
  Kernel k;
  EXPECT_EQ(k.sync_domain().local_time_stamp(), k.now());
}

TEST(QuantumKeeper, NeedsSyncOnceQuantumExhausted) {
  Kernel k;
  k.set_global_quantum(1_us);
  k.spawn_thread("t", [&] {
    QuantumKeeper qk(k);
    qk.inc(400_ns);
    EXPECT_FALSE(qk.need_sync());
    qk.inc(400_ns);
    EXPECT_FALSE(qk.need_sync());
    qk.inc(400_ns);
    EXPECT_TRUE(qk.need_sync());
    qk.sync();
    EXPECT_EQ(k.now(), 1200_ns);
  });
  k.run();
}

TEST(QuantumKeeper, IncAndSyncIfNeededBatchesContextSwitches) {
  Kernel k;
  k.set_global_quantum(1_us);
  k.spawn_thread("t", [&] {
    QuantumKeeper qk(k);
    for (int i = 0; i < 100; ++i) {
      qk.inc_and_sync_if_needed(100_ns);  // 10 inc per quantum
    }
    k.sync_domain().sync();
  });
  k.run();
  EXPECT_EQ(k.now(), 10_us);
  // 1 initial dispatch + 10 quantum syncs (the final sync coincides with
  // the 10th quantum boundary, already synchronized).
  EXPECT_LE(k.stats().context_switches, 12u);
  EXPECT_GE(k.stats().context_switches, 10u);
  // Every performed synchronization was quantum-driven.
  EXPECT_EQ(k.stats().syncs(SyncCause::Quantum),
            k.stats().syncs_performed());
}

TEST(QuantumKeeper, ZeroQuantumSyncsEveryAnnotation) {
  // The paper: "temporal decoupling can be disabled by setting it to zero".
  Kernel k;
  k.set_global_quantum(Time{});
  k.spawn_thread("t", [&] {
    QuantumKeeper qk(k);
    for (int i = 0; i < 5; ++i) {
      qk.inc_and_sync_if_needed(10_ns);
    }
  });
  k.run();
  EXPECT_EQ(k.now(), 50_ns);
  EXPECT_EQ(k.stats().context_switches, 6u);  // initial + 5 syncs
}

TEST(QuantumKeeper, RoutesThroughStoredKernelNotAmbient) {
  // The keeper must consult the quantum of the kernel it was built for,
  // through that kernel's SyncDomain -- not whatever kernel happens to be
  // ambient (the keeper and the ambient kernel agree here, but the policy
  // object must be the stored one).
  Kernel k;
  k.set_global_quantum(100_ns);
  k.spawn_thread("t", [&] {
    QuantumKeeper qk(k);
    qk.inc(50_ns);
    EXPECT_FALSE(qk.need_sync());
    // Tighten the quantum through the same domain the keeper stores.
    qk.kernel().sync_domain().set_quantum(10_ns);
    EXPECT_TRUE(qk.need_sync());
  });
  k.run();
}

TEST(LocalTime, QuantumErrorScenario) {
  // Paper SII.A: a cancellation message sent at date T may be seen up to a
  // quantum late by a decoupled receiver. Demonstrates why FIFO channels
  // need the Smart FIFO rather than quantum-based decoupling.
  Kernel k;
  k.set_global_quantum(1_us);
  bool flag = false;
  Time observed_at;
  k.spawn_thread("setter", [&] {
    SyncDomain& sd = k.sync_domain();
    flag = true;
    sd.inc(10_ns);  // flag=1; inc(10ns); flag=0 from the paper
    sd.sync();
    flag = false;
  });
  k.spawn_thread("poller", [&] {
    QuantumKeeper qk(k);
    qk.inc_and_sync_if_needed(1_us);  // quantum-paced polling
    observed_at = k.sync_domain().local_time_stamp();
    // The 10ns flag pulse is invisible at quantum granularity.
    EXPECT_FALSE(flag);
  });
  k.run();
  EXPECT_GE(observed_at, 10_ns);
}

}  // namespace
}  // namespace tdsim
