#include "kernel/fault_plan.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "kernel/report.h"

namespace tdsim {

namespace {

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  Report::error("FaultPlan::parse: " + why + " in \"" + spec + "\"");
}

/// "200ns" / "1500ps" / "2us" / "3ms" / "1s" -> Time.
Time parse_duration(const std::string& text, const std::string& spec) {
  char* end = nullptr;
  const unsigned long long count = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) {
    bad_spec(spec, "bad duration \"" + text + "\"");
  }
  const std::string unit(end);
  if (unit == "ps") return Time(count, TimeUnit::PS);
  if (unit == "ns") return Time(count, TimeUnit::NS);
  if (unit == "us") return Time(count, TimeUnit::US);
  if (unit == "ms") return Time(count, TimeUnit::MS);
  if (unit == "s") return Time(count, TimeUnit::S);
  bad_spec(spec, "bad duration unit \"" + unit + "\"");
}

const char* kind_name(FaultAction::Kind kind) {
  switch (kind) {
    case FaultAction::Kind::Throw: return "throw";
    case FaultAction::Kind::Stall: return "stall";
    case FaultAction::Kind::FlipMutation: return "flip";
    case FaultAction::Kind::Stop: return "stop";
  }
  return "?";
}

struct FlagEntry {
  const char* name;
  bool SmartFifoMutations::* member;
};

constexpr FlagEntry kFlagTable[] = {
    {"skip_writer_time_bump", &SmartFifoMutations::skip_writer_time_bump},
    {"skip_reader_time_bump", &SmartFifoMutations::skip_reader_time_bump},
    {"skip_insertion_date", &SmartFifoMutations::skip_insertion_date},
    {"skip_freeing_date", &SmartFifoMutations::skip_freeing_date},
    {"naive_is_empty", &SmartFifoMutations::naive_is_empty},
    {"naive_is_full", &SmartFifoMutations::naive_is_full},
    {"undelayed_external_events",
     &SmartFifoMutations::undelayed_external_events},
    {"naive_get_size", &SmartFifoMutations::naive_get_size},
    {"skip_sync_on_block", &SmartFifoMutations::skip_sync_on_block},
};

const char* flag_name(bool SmartFifoMutations::* member) {
  for (const FlagEntry& entry : kFlagTable) {
    if (entry.member == member) {
      return entry.name;
    }
  }
  return "?";
}

}  // namespace

bool SmartFifoMutations::* resolve_mutation_flag(const std::string& name) {
  for (const FlagEntry& entry : kFlagTable) {
    if (name == entry.name) {
      return entry.member;
    }
  }
  return nullptr;
}

std::string FaultAction::to_string() const {
  std::ostringstream out;
  out << kind_name(kind) << ':' << process << '@' << activation;
  switch (kind) {
    case Kind::Throw:
      if (only_parallel) {
        out << "!par";
      }
      break;
    case Kind::Stall:
      out << '=' << stall.ps() << "ps";
      break;
    case Kind::FlipMutation:
      out << '=' << flag_name(flag);
      break;
    case Kind::Stop:
      break;
  }
  return out.str();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream stream(spec);
  std::string entry;
  while (std::getline(stream, entry, ';')) {
    if (entry.empty()) {
      continue;
    }
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      bad_spec(spec, "missing ':' in action \"" + entry + "\"");
    }
    const std::string verb = entry.substr(0, colon);
    std::string rest = entry.substr(colon + 1);

    FaultAction action;
    if (verb == "throw") {
      action.kind = FaultAction::Kind::Throw;
    } else if (verb == "stall") {
      action.kind = FaultAction::Kind::Stall;
    } else if (verb == "flip") {
      action.kind = FaultAction::Kind::FlipMutation;
    } else if (verb == "stop") {
      action.kind = FaultAction::Kind::Stop;
    } else {
      bad_spec(spec, "unknown action \"" + verb + "\"");
    }

    // Optional "!par" suffix (throw only).
    if (const std::size_t bang = rest.rfind("!par");
        bang != std::string::npos && bang + 4 == rest.size()) {
      if (action.kind != FaultAction::Kind::Throw) {
        bad_spec(spec, "!par is only valid on throw actions");
      }
      action.only_parallel = true;
      rest.resize(bang);
    }

    // Optional "=payload" (stall duration / mutation flag).
    std::string payload;
    if (const std::size_t eq = rest.find('='); eq != std::string::npos) {
      payload = rest.substr(eq + 1);
      rest.resize(eq);
    }

    const std::size_t at = rest.rfind('@');
    if (at == std::string::npos || at == 0 || at + 1 == rest.size()) {
      bad_spec(spec, "expected <process>@<activation> in \"" + entry + "\"");
    }
    action.process = rest.substr(0, at);
    const std::string count = rest.substr(at + 1);
    char* end = nullptr;
    action.activation = std::strtoull(count.c_str(), &end, 10);
    if (end == count.c_str() || *end != '\0' || action.activation == 0) {
      bad_spec(spec, "bad activation \"" + count + "\"");
    }

    switch (action.kind) {
      case FaultAction::Kind::Stall:
        if (payload.empty()) {
          bad_spec(spec, "stall needs =<duration>");
        }
        action.stall = parse_duration(payload, spec);
        break;
      case FaultAction::Kind::FlipMutation:
        action.flag = resolve_mutation_flag(payload);
        if (action.flag == nullptr) {
          bad_spec(spec, "unknown mutation flag \"" + payload + "\"");
        }
        break;
      case FaultAction::Kind::Throw:
      case FaultAction::Kind::Stop:
        if (!payload.empty()) {
          bad_spec(spec, "unexpected =payload on " + std::string(kind_name(
                             action.kind)));
        }
        break;
    }
    plan.actions.push_back(std::move(action));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultAction& action : actions) {
    if (!out.empty()) {
      out += ';';
    }
    out += action.to_string();
  }
  return out;
}

}  // namespace tdsim
