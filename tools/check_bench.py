#!/usr/bin/env python3
"""Benchmark regression gate for the BENCH_*.json files the benches emit.

Two checks, run by CI's perf-gate job (see .github/workflows/ci.yml):

1. Determinism vs committed baseline (bench/baselines/): every numeric
   field except wall-clock ones must match the baseline bit-for-bit.
   Simulation results (dates, delta counts, per-cause sync counts) are
   machine-independent, so any drift is a functional regression -- this is
   the line the parallel scheduler's bit-exactness guarantee is held to on
   every push.

2. Worker-sweep wall gate: for files whose rows carry a "workers" field
   (bench_multidomain_soc --workers), the summed wall time of every worker
   count must stay within --wall-tolerance of the smallest worker count's
   sum. A parallel run more than that much slower than sequential fails
   the gate; the tolerance also bounds how much headline speedup may
   regress run-over-run. Sums (not per-row walls) are gated so the
   fine-quantum rows' barrier overhead cannot fail a sweep whose total is
   dominated by the realistic rows.

Wall-clock fields (any key containing "wall" or "seconds") are never
compared against the baseline: baselines are committed from whatever
machine regenerated them, and absolute times do not travel.

Usage:
  tools/check_bench.py --baseline-dir bench/baselines \
      [--wall-tolerance 0.25] [--min-ref-wall 0.05] [--report FILE] \
      BENCH_foo.json [BENCH_bar.json ...]

Exit status 0 when every check passes, 1 otherwise. --report additionally
writes the full comparison (uploaded as a CI artifact).

Regenerating baselines after an intended behavior change:
  run the bench with the exact invocation recorded in
  bench/baselines/README.md and copy the BENCH_*.json over the old one.
"""

import argparse
import json
import os
import sys


def is_wall_key(key):
    lowered = key.lower()
    return "wall" in lowered or "seconds" in lowered


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("rows", [])


def compare_to_baseline(name, rows, baseline_rows, out):
    """Field-exact comparison of deterministic fields; returns #failures."""
    failures = 0
    if len(rows) != len(baseline_rows):
        out.append(f"FAIL {name}: {len(rows)} rows vs {len(baseline_rows)} "
                   "in baseline (bench invocation changed? regenerate the "
                   "baseline alongside)")
        return 1
    for i, (row, base) in enumerate(zip(rows, baseline_rows)):
        for key, expected in base.items():
            if is_wall_key(key):
                continue
            actual = row.get(key)
            if actual != expected:
                out.append(f"FAIL {name} row {i}: {key} = {actual!r}, "
                           f"baseline {expected!r}")
                failures += 1
    if failures == 0:
        out.append(f"ok   {name}: {len(rows)} rows match baseline "
                   "(deterministic fields)")
    return failures


def check_worker_walls(name, rows, tolerance, min_ref_wall, out):
    """Summed wall time per worker count vs the smallest count's sum."""
    sums = {}
    for row in rows:
        if "workers" not in row or "wall_seconds" not in row:
            return 0
        sums.setdefault(row["workers"], 0.0)
        sums[row["workers"]] += row["wall_seconds"]
    if len(sums) < 2:
        return 0
    reference_workers = min(sums)
    reference = sums[reference_workers]
    if reference < min_ref_wall:
        out.append(f"skip {name}: reference wall {reference:.3f}s below "
                   f"{min_ref_wall}s noise floor, worker gate not applied")
        return 0
    failures = 0
    for workers in sorted(sums):
        ratio = sums[workers] / reference
        verdict = "ok  "
        if workers != reference_workers and ratio > 1.0 + tolerance:
            verdict = "FAIL"
            failures += 1
        out.append(f"{verdict} {name}: workers={workers} wall "
                   f"{sums[workers]:.3f}s ({ratio:.2f}x of "
                   f"workers={reference_workers})")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--wall-tolerance", type=float, default=0.25,
                        help="allowed fractional wall regression of any "
                        "worker count vs the smallest one (default 0.25)")
    parser.add_argument("--min-ref-wall", type=float, default=0.05,
                        help="skip the worker gate when the reference sum "
                        "is below this many seconds (noise floor)")
    parser.add_argument("--report", help="also write the comparison here")
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()

    out = []
    failures = 0
    for path in args.files:
        name = os.path.basename(path)
        rows = load_rows(path)
        baseline_path = os.path.join(args.baseline_dir, name)
        if os.path.exists(baseline_path):
            failures += compare_to_baseline(name, rows,
                                            load_rows(baseline_path), out)
        else:
            out.append(f"FAIL {name}: no baseline at {baseline_path} "
                       "(new bench? commit its baseline)")
            failures += 1
        failures += check_worker_walls(name, rows, args.wall_tolerance,
                                       args.min_ref_wall, out)

    report = "\n".join(out) + "\n"
    sys.stdout.write(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)
    if failures:
        sys.stdout.write(f"{failures} check(s) failed\n")
        return 1
    sys.stdout.write("all bench checks passed\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
