// Hardware accelerator model (case-study SoC, paper SIV.C): a temporally
// decoupled thread streaming words from an input FIFO to an output FIFO
// with a per-word processing latency, controlled and monitored by the
// embedded software through a register bank.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/fifo_interface.h"
#include "core/start_gate.h"
#include "kernel/module.h"
#include "tlm/register_bank.h"
#include "trace/trace.h"

namespace tdsim::soc {

class Accelerator : public Module {
 public:
  /// Register map (32-bit registers, byte address = index * 4).
  enum Register : std::size_t {
    kCtrl = 0,       ///< Write 1 to start.
    kStatus = 1,     ///< 1 once processing finished (date-accurate).
    kProgress = 2,   ///< Words processed so far (updated per block).
    kInputLevel = 3, ///< Read hook: input FIFO fill level (monitor).
    kRegisterCount = 4,
  };

  struct Config {
    /// Input stream; when null the accelerator is a source generating
    /// `total_words` pseudo-data words.
    FifoInterface<std::uint32_t>* input = nullptr;
    /// Output stream; when null the accelerator is a sink accumulating a
    /// checksum.
    FifoInterface<std::uint32_t>* output = nullptr;
    /// Per-word processing latency.
    Time per_word = 2_ns;
    /// Word transform: out = in * mul + add (source: f(i) = i * mul + add).
    std::uint32_t mul = 1;
    std::uint32_t add = 0;
    /// Total words to process before reporting done.
    std::uint64_t total_words = 0;
    /// Status/progress granularity: the progress register is refreshed
    /// (with a synchronization, keeping it date-accurate) once per block.
    std::uint64_t block_words = 64;
    /// Synchronization domain the processing thread joins (e.g. a shared
    /// "periph" domain for all accelerators); null = the module default.
    SyncDomain* domain = nullptr;
  };

  Accelerator(Module& parent, const std::string& name, Config config);

  /// The control/status registers, to be mapped on the SoC bus.
  tlm::RegisterBank& registers() { return registers_; }

  /// Optional trace recorder: logs start/done (and per-block marks) with
  /// the accelerator's local dates, for cross-mode validation.
  void set_recorder(trace::Recorder* recorder) { recorder_ = recorder; }

  bool done() const { return done_; }
  std::uint64_t words_processed() const { return words_processed_; }
  std::uint32_t checksum() const { return checksum_; }
  Time completion_date() const { return completion_date_; }

 private:
  void process();
  std::uint32_t next_input_word();
  void emit_output_word(std::uint32_t word);

  Config config_;
  tlm::RegisterBank registers_;
  /// Start command carrying the software's local date at the register
  /// write -- a timestamped hand-off, so the start is as accurate as a
  /// Smart FIFO insertion.
  StartGate<std::uint32_t> start_gate_;

  trace::Recorder* recorder_ = nullptr;
  bool done_ = false;
  std::uint64_t words_processed_ = 0;
  std::uint64_t source_index_ = 0;
  std::uint32_t checksum_ = 0;
  Time completion_date_;
};

}  // namespace tdsim::soc
